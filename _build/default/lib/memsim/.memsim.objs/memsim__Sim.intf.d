lib/memsim/sim.mli: Config Machine Trace
