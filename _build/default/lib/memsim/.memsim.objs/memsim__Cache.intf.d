lib/memsim/cache.mli:
