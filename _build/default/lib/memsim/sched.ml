exception Crashed = Machine.Crashed

type _ Effect.t += Wait : int -> unit Effect.t

type state =
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type thread = { thread_id : int; mutable time : int; mutable state : state }

type t = {
  mutable threads : thread list; (* reverse spawn order *)
  mutable count : int;
  ready : thread Repro_util.Min_heap.t;
  mutable current : thread option;
  mutable crash_at : int option;
  mutable crashed : bool;
  mutable max_time : int;
  mutable started : bool;
}

let create () =
  {
    threads = [];
    count = 0;
    ready = Repro_util.Min_heap.create ();
    current = None;
    crash_at = None;
    crashed = false;
    max_time = 0;
    started = false;
  }

let spawn t f =
  if t.started then invalid_arg "Sched.spawn: scheduler already running";
  let th = { thread_id = t.count; time = 0; state = Not_started f } in
  t.count <- t.count + 1;
  t.threads <- th :: t.threads;
  Repro_util.Min_heap.push t.ready ~key:0 th;
  th.thread_id

let now t = match t.current with Some th -> th.time | None -> t.max_time

(* Machine operations may also run outside [run] (untimed setup and
   recovery phases): time simply does not advance there, and thread id
   defaults to 0. *)
let tid t = match t.current with Some th -> th.thread_id | None -> 0

let wait t ns =
  assert (ns >= 0);
  match t.current with None -> () | Some _ -> Effect.perform (Wait ns)

let wait_until t target =
  match t.current with
  | None -> ()
  | Some th -> if target > th.time then Effect.perform (Wait (target - th.time))

let crashed t = t.crashed

let time_limit t = t.crash_at

let running t = t.current <> None

let kill t th =
  match th.state with
  | Suspended k ->
    th.state <- Finished;
    t.current <- Some th;
    (* The handler's exnc re-raises, so an uncaught Crashed surfaces
       here; a thread that swallows it instead terminates via retc. *)
    (try Effect.Deep.discontinue k Crashed with Crashed -> ());
    t.current <- None
  | Not_started _ | Running | Finished -> th.state <- Finished

let run ?crash_at t =
  if t.started then invalid_arg "Sched.run: scheduler already ran";
  t.started <- true;
  t.crash_at <- crash_at;
  let handler =
    {
      Effect.Deep.retc =
        (fun () ->
          match t.current with
          | None -> assert false
          | Some th ->
            th.state <- Finished;
            t.max_time <- max t.max_time th.time);
      exnc = (fun exn -> raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait ns ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let th = match t.current with Some th -> th | None -> assert false in
                th.time <- th.time + ns;
                th.state <- Suspended k;
                t.max_time <- max t.max_time th.time;
                Repro_util.Min_heap.push t.ready ~key:th.time th)
          | _ -> None);
    }
  in
  let over_crash time = match t.crash_at with Some c -> time >= c | None -> false in
  let continue_loop = ref true in
  while !continue_loop do
    match Repro_util.Min_heap.pop t.ready with
    | None -> continue_loop := false
    | Some (_, th) when th.state = Finished -> ()
    | Some (time, th) ->
      if over_crash time then begin
        t.crashed <- true;
        kill t th;
        (* Power is gone: kill everything else too. *)
        let rec drain () =
          match Repro_util.Min_heap.pop t.ready with
          | None -> ()
          | Some (_, other) ->
            kill t other;
            drain ()
        in
        drain ();
        continue_loop := false
      end
      else begin
        t.current <- Some th;
        (match th.state with
        | Not_started f ->
          th.state <- Running;
          Effect.Deep.match_with f () handler
        | Suspended k ->
          th.state <- Running;
          Effect.Deep.continue k ()
        | Running | Finished -> assert false);
        t.current <- None
      end
  done;
  t.current <- None;
  match t.crash_at with
  | Some c when t.crashed -> t.max_time <- min t.max_time c
  | Some _ | None -> ()
