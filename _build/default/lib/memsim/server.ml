type t = {
  service_ns : int;
  capacity : int;
  mutable next_free : int;
  inflight : int Queue.t; (* completion times, ascending; only for bounded servers *)
  mutable requests : int;
  mutable stall_ns : int;
  mutable queue_ns : int;
}

let create ~service_ns ~capacity =
  {
    service_ns;
    capacity;
    next_free = 0;
    inflight = Queue.create ();
    requests = 0;
    stall_ns = 0;
    queue_ns = 0;
  }

let acquire_sync t ~now ~latency_ns =
  t.requests <- t.requests + 1;
  let start = max now t.next_free in
  t.next_free <- start + t.service_ns;
  t.queue_ns <- t.queue_ns + (start - now);
  start + latency_ns

type async = { ready : int; completion : int }

let drop_completed t ~now =
  let continue = ref true in
  while !continue && not (Queue.is_empty t.inflight) do
    if Queue.peek t.inflight <= now then ignore (Queue.pop t.inflight) else continue := false
  done

let enqueue_async t ~now =
  t.requests <- t.requests + 1;
  let ready = ref now in
  if t.capacity > 0 then begin
    drop_completed t ~now;
    (* Completions are FIFO: while full, wait for the oldest in-flight
       entry, which frees exactly one slot. *)
    while Queue.length t.inflight >= t.capacity do
      ready := max !ready (Queue.pop t.inflight)
    done
  end;
  let start = max !ready t.next_free in
  let completion = start + t.service_ns in
  t.next_free <- completion;
  if t.capacity > 0 then Queue.push completion t.inflight;
  t.stall_ns <- t.stall_ns + (!ready - now);
  { ready = !ready; completion }

let reset t =
  t.next_free <- 0;
  Queue.clear t.inflight;
  t.requests <- 0;
  t.stall_ns <- 0;
  t.queue_ns <- 0

let inflight_at t ~now = Queue.fold (fun acc c -> if c > now then acc + 1 else acc) 0 t.inflight

let requests t = t.requests
let stall_ns t = t.stall_ns
let queue_ns t = t.queue_ns
