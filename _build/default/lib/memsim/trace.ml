type kind = Load of int | Store of int | Clwb of int | Sfence | Publish of int | Crash

type event = { at_ns : int; tid : int; kind : kind }

type t = {
  ring : event array;
  mutable next : int; (* total recorded; ring slot = next mod capacity *)
}

let dummy = { at_ns = 0; tid = 0; kind = Sfence }

let create ?(capacity = 4096) () =
  assert (capacity > 0);
  { ring = Array.make capacity dummy; next = 0 }

let record t ~at_ns ~tid kind =
  t.ring.(t.next mod Array.length t.ring) <- { at_ns; tid; kind };
  t.next <- t.next + 1

let recorded t = t.next

let tail t =
  let cap = Array.length t.ring in
  let n = min t.next cap in
  let first = t.next - n in
  List.init n (fun i -> t.ring.((first + i) mod cap))

let find t p =
  let rec go = function
    | [] -> None
    | e :: rest -> ( match go rest with Some hit -> Some hit | None -> if p e then Some e else None)
  in
  go (tail t)

module Int_set = Set.Make (Int)

let crash_points ?(halo = 1) t =
  let add acc e =
    match e.kind with
    | Load _ | Crash -> acc
    | Store _ | Clwb _ | Sfence | Publish _ ->
      Int_set.add e.at_ns (Int_set.add (e.at_ns + halo) acc)
  in
  List.fold_left add Int_set.empty (tail t)
  |> Int_set.filter (fun x -> x > 0)
  |> Int_set.elements

let pp_kind ppf = function
  | Load addr -> Format.fprintf ppf "load   %d" addr
  | Store addr -> Format.fprintf ppf "store  %d" addr
  | Clwb addr -> Format.fprintf ppf "clwb   %d" addr
  | Sfence -> Format.fprintf ppf "sfence"
  | Publish n -> Format.fprintf ppf "publish %d words" n
  | Crash -> Format.fprintf ppf "CRASH"

let pp_event ppf e = Format.fprintf ppf "%10dns t%-2d %a" e.at_ns e.tid pp_kind e.kind

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (tail t)

let clear t = t.next <- 0
