lib/telemetry/export.mli: Memsim Pstm
