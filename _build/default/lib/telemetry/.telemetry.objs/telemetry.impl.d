lib/telemetry/telemetry.ml: Export Filename Fun List Memsim Pstm Series Sys
