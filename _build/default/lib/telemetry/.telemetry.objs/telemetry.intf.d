lib/telemetry/telemetry.mli: Export Memsim Pstm Series
