lib/telemetry/series.mli: Memsim Pstm
