lib/telemetry/export.ml: Buffer Char List Memsim Printf Pstm Repro_util String
