lib/telemetry/series.ml: Array Buffer List Memsim Printf Pstm
