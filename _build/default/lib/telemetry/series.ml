(* Ring-buffered time series of machine/runtime state, sampled at a
   fixed virtual-time cadence by a monitor thread.  All fields are
   integers read from deterministic counters, so a series is
   bit-deterministic across repeated runs. *)

module Sim = Memsim.Sim

type sample = {
  at_ns : int;
  wpq_lines : int;
  dirty_l3_lines : int;
  dirty_dram_pages : int;
  armed_log_lines : int;
  commits : int;
  aborts : int;
  d_commits : int;
  d_aborts : int;
  loads : int;
  stores : int;
  clwbs : int;
  sfences : int;
  writebacks : int;
  fence_wait_ns : int;
  wpq_stall_ns : int;
  nvm_reads : int;
}

let zero_sample =
  {
    at_ns = 0;
    wpq_lines = 0;
    dirty_l3_lines = 0;
    dirty_dram_pages = 0;
    armed_log_lines = 0;
    commits = 0;
    aborts = 0;
    d_commits = 0;
    d_aborts = 0;
    loads = 0;
    stores = 0;
    clwbs = 0;
    sfences = 0;
    writebacks = 0;
    fence_wait_ns = 0;
    wpq_stall_ns = 0;
    nvm_reads = 0;
  }

type t = {
  ring : sample array;
  capacity : int;
  mutable next : int; (* total samples ever recorded *)
  mutable last_commits : int;
  mutable last_aborts : int;
}

let create ?(capacity = 4096) () =
  let capacity = max 1 capacity in
  { ring = Array.make capacity zero_sample; capacity; next = 0; last_commits = 0; last_aborts = 0 }

let record t sim ptm =
  let st = Sim.Stats.get sim in
  let debt = Sim.Debt.sample sim in
  let ps = Pstm.Ptm.Stats.get ptm in
  let s =
    {
      at_ns = Sim.now sim;
      wpq_lines = debt.Sim.Debt.wpq_lines;
      dirty_l3_lines = debt.Sim.Debt.dirty_l3_lines;
      dirty_dram_pages = debt.Sim.Debt.dirty_dram_pages;
      armed_log_lines = debt.Sim.Debt.armed_log_lines;
      commits = ps.Pstm.Ptm.Stats.commits;
      aborts = ps.Pstm.Ptm.Stats.aborts;
      d_commits = ps.Pstm.Ptm.Stats.commits - t.last_commits;
      d_aborts = ps.Pstm.Ptm.Stats.aborts - t.last_aborts;
      loads = st.Sim.Stats.loads;
      stores = st.Sim.Stats.stores;
      clwbs = st.Sim.Stats.clwbs;
      sfences = st.Sim.Stats.sfences;
      writebacks = st.Sim.Stats.writebacks;
      fence_wait_ns = st.Sim.Stats.fence_wait_ns;
      wpq_stall_ns = st.Sim.Stats.wpq_stall_ns;
      nvm_reads = st.Sim.Stats.nvm_reads;
    }
  in
  t.last_commits <- s.commits;
  t.last_aborts <- s.aborts;
  t.ring.(t.next mod t.capacity) <- s;
  t.next <- t.next + 1

let recorded t = t.next
let dropped t = max 0 (t.next - t.capacity)

let samples t =
  let kept = min t.next t.capacity in
  let first = t.next - kept in
  List.init kept (fun i -> t.ring.((first + i) mod t.capacity))

let csv_header =
  "t_ns,wpq_lines,dirty_l3_lines,dirty_dram_pages,armed_log_lines,commits,aborts,d_commits,d_aborts,loads,stores,clwbs,sfences,writebacks,fence_wait_ns,wpq_stall_ns,nvm_reads"

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n" s.at_ns
           s.wpq_lines s.dirty_l3_lines s.dirty_dram_pages s.armed_log_lines s.commits s.aborts
           s.d_commits s.d_aborts s.loads s.stores s.clwbs s.sfences s.writebacks s.fence_wait_ns
           s.wpq_stall_ns s.nvm_reads))
    (samples t);
  Buffer.contents buf
