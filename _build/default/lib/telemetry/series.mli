(** Ring-buffered time series of machine/runtime state.

    A monitor thread calls {!record} at a fixed virtual-time cadence;
    each sample snapshots the simulator's cumulative counters, the
    persistence debt ({!Memsim.Sim.Debt.sample} — WPQ occupancy, dirty
    L3 lines, ...) and PTM commit/abort totals plus deltas since the
    previous sample.  Everything is an integer counter read, so series
    are bit-deterministic and recording never advances virtual time. *)

type sample = {
  at_ns : int;
  wpq_lines : int;  (** NVM WPQ occupancy at the sample instant *)
  dirty_l3_lines : int;
  dirty_dram_pages : int;
  armed_log_lines : int;
  commits : int;  (** cumulative *)
  aborts : int;  (** cumulative *)
  d_commits : int;  (** since previous sample *)
  d_aborts : int;  (** since previous sample *)
  loads : int;
  stores : int;
  clwbs : int;
  sfences : int;
  writebacks : int;
  fence_wait_ns : int;
  wpq_stall_ns : int;
  nvm_reads : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 samples; oldest samples are overwritten. *)

val record : t -> Memsim.Sim.t -> Pstm.Ptm.t -> unit

val recorded : t -> int
(** Total samples ever recorded (may exceed capacity). *)

val dropped : t -> int

val samples : t -> sample list
(** Retained samples, oldest first. *)

val csv_header : string

val to_csv : t -> string
(** Header plus one integer row per retained sample. *)
