lib/crashtest/scenarios.mli: Engine Workloads
