lib/crashtest/engine.mli: Format Memsim Pstm
