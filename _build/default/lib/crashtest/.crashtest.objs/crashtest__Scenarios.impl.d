lib/crashtest/scenarios.ml: Array Engine Format Hashtbl List Pmem Printf Pstm Pstructs Repro_util String Workloads
