lib/crashtest/engine.ml: Array Filename Format Fun List Machine Memsim Pmem Printf Pstm Repro_util String Sys Telemetry
