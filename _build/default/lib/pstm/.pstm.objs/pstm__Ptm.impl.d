lib/pstm/ptm.ml: Array Hashtbl List Machine Pmem Profile Repro_util
