lib/pstm/ptm.ml: Array Hashtbl List Machine Pmem Repro_util
