lib/pstm/profile.ml: Array List Machine Repro_util
