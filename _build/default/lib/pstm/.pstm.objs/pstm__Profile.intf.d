lib/pstm/profile.mli: Machine Repro_util
