lib/pstm/ptm.mli: Machine Pmem Profile
