(** Region integrity checker (the `pmempool check` analog).

    Walks a region's persistent metadata — header, root slots, the
    allocator's arena/block-header chains and the per-thread PTM log
    areas — and reports everything suspicious.  Read-only and safe to
    run on any attached region, including one that has just survived a
    crash (where leaked arenas are expected and reported as such,
    not as corruption). *)

type severity = Info | Warning | Corruption

type finding = { severity : severity; what : string }

type report = {
  findings : finding list;  (** in scan order *)
  live_blocks : int;
  free_blocks : int;
  leaked_arenas : int;  (** unrecognizable arena starts (crash leaks) *)
  live_words : int;  (** payload words in allocated blocks *)
}

val severity_name : severity -> string

val run : Region.t -> report
(** Scan the region.  Corruption findings mean persistent metadata is
    inconsistent (overlapping blocks, headers out of bounds, root
    pointers outside the data area, log areas with malformed status). *)

val is_clean : report -> bool
(** No [Corruption] findings. *)

val pp : Format.formatter -> report -> unit
