lib/pmem/alloc.mli: Region
