lib/pmem/region.ml: Machine
