lib/pmem/check.ml: Format List Machine Printf Region
