lib/pmem/check.mli: Format Region
