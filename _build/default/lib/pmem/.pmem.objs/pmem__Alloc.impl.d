lib/pmem/alloc.ml: Array List Machine Printf Region
