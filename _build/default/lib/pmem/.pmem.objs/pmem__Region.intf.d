lib/pmem/region.mli: Machine
