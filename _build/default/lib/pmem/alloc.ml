module Layout = Machine.Layout
module Meta = Machine.Meta_layout

type tx_ops = {
  txr : int -> int;
  txw : int -> int -> unit;
  on_commit : (unit -> unit) -> unit;
  on_abort : (unit -> unit) -> unit;
}

(* Small-object size classes (payload words). *)
let classes = [| 1; 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64; 96; 128; 192; 256; 384; 512 |]
let num_classes = Array.length classes
let max_object_words = classes.(num_classes - 1)

let class_of words =
  let rec go i = if classes.(i) >= words then i else go (i + 1) in
  if words <= 0 || words > max_object_words then
    invalid_arg (Printf.sprintf "Alloc: bad object size %d" words)
  else go 0

(* Arenas are fixed-size chunks taken from the persistent high-water
   mark.  Arena header word: kind+magic+size; zero means "never
   initialized" (the scan then skips one arena — a bounded leak, the
   price of not needing a log for refills). *)
let arena_words = 2048
let arena_magic = 0xA4E4
let arena_header kind = (arena_magic lsl 20) lor kind
let kind_small = 0
let kind_large = 1

let is_arena_header w = w lsr 20 = arena_magic
let arena_kind w = w land 0xFFFFF

(* Block header word: magic | allocated bit | payload words. *)
let block_magic = 0xB10C

let mk_header ~allocated words =
  (block_magic lsl 24) lor ((if allocated then 1 else 0) lsl 16) lor words

let is_block_header w = w lsr 24 = block_magic
let header_allocated w = w land (1 lsl 16) <> 0
let header_words w = w land 0xFFFF

type arena_cursor = { mutable cur : int; mutable limit : int }

type t = {
  region : Region.t;
  m : Machine.t;
  (* free.(tid).(class) — per-thread volatile free lists of payload addrs *)
  free : int list ref array array;
  (* volatile list of free large chunks: (payload_addr, payload_words) *)
  mutable large_free : (int * int) list;
  arenas : arena_cursor array;
}

let make region =
  let m = Region.machine region in
  let nthreads = Region.max_threads region in
  {
    region;
    m;
    free = Array.init nthreads (fun _ -> Array.init num_classes (fun _ -> ref []));
    large_free = [];
    arenas = Array.init nthreads (fun _ -> { cur = 0; limit = 0 });
  }

let persisted_high_water t = t.m.Machine.raw_read Region.high_water_addr

let create region =
  let t = make region in
  t.m.Machine.meta_set Meta.alloc_high_water_idx (persisted_high_water t);
  t

(* Advance the persistent high-water mark monotonically and make it
   durable before the space is ever used. *)
let persist_high_water t new_hw =
  let m = t.m in
  if m.Machine.load Region.high_water_addr < new_hw then begin
    m.Machine.store Region.high_water_addr new_hw;
    if m.Machine.needs_flush then begin
      m.Machine.clwb Region.high_water_addr;
      if m.Machine.needs_fence then m.Machine.sfence ()
    end
  end

(* Claim [chunk_words] (a multiple of arena_words) from the high-water
   mark; returns the chunk base. *)
let claim_chunk t chunk_words =
  let m = t.m in
  let rec go () =
    let hw = m.Machine.meta_get Meta.alloc_high_water_idx in
    let new_hw = hw + chunk_words in
    if new_hw > Region.data_end t.region then raise Out_of_memory;
    if m.Machine.meta_cas Meta.alloc_high_water_idx hw new_hw then begin
      persist_high_water t new_hw;
      hw
    end
    else go ()
  in
  go ()

let write_arena_header t base kind =
  let m = t.m in
  m.Machine.store base (arena_header kind);
  if m.Machine.needs_flush then begin
    m.Machine.clwb base;
    if m.Machine.needs_fence then m.Machine.sfence ()
  end

let refill_arena t tid =
  let base = claim_chunk t arena_words in
  write_arena_header t base kind_small;
  let a = t.arenas.(tid) in
  a.cur <- base + 1;
  a.limit <- base + arena_words

let alloc_large t ops ~words =
  (* First fit from the volatile large list. *)
  let rec take acc = function
    | [] -> None
    | (addr, sz) :: rest when sz >= words ->
      t.large_free <- List.rev_append acc rest;
      Some addr
    | entry :: rest -> take (entry :: acc) rest
  in
  let header_addr =
    match take [] t.large_free with
    | Some payload -> payload - 1
    | None ->
      let chunk_words = (words + 2 + arena_words - 1) / arena_words * arena_words in
      let base = claim_chunk t chunk_words in
      write_arena_header t base kind_large;
      base + 1
  in
  let payload = header_addr + 1 in
  let payload_words = t.m.Machine.raw_read header_addr in
  let size = if is_block_header payload_words then header_words payload_words else words in
  ops.txw header_addr (mk_header ~allocated:true size);
  ops.on_abort (fun () -> t.large_free <- (payload, size) :: t.large_free);
  payload

let alloc t ops ~words =
  if words > max_object_words then alloc_large t ops ~words
  else begin
    let tid = t.m.Machine.tid () in
    let c = class_of words in
    let csize = classes.(c) in
    let list = t.free.(tid).(c) in
    let header_addr =
      match !list with
      | payload :: rest ->
        list := rest;
        ops.on_abort (fun () -> list := payload :: !list);
        payload - 1
      | [] ->
        let a = t.arenas.(tid) in
        if a.cur + 1 + csize > a.limit then refill_arena t tid;
        let a = t.arenas.(tid) in
        let h = a.cur in
        a.cur <- a.cur + 1 + csize;
        let payload = h + 1 in
        ops.on_abort (fun () -> list := payload :: !list);
        h
    in
    ops.txw header_addr (mk_header ~allocated:true csize);
    header_addr + 1
  end

let header_of_payload t payload =
  let h = t.m.Machine.raw_read (payload - 1) in
  if not (is_block_header h) then
    invalid_arg (Printf.sprintf "Alloc: %d is not a live payload address" payload);
  h

let payload_words t payload = header_words (header_of_payload t payload)

let free t ops payload =
  let h = ops.txr (payload - 1) in
  if not (is_block_header h && header_allocated h) then
    invalid_arg (Printf.sprintf "Alloc.free: %d is not an allocated payload" payload);
  let words = header_words h in
  ops.txw (payload - 1) (mk_header ~allocated:false words);
  let tid = t.m.Machine.tid () in
  ops.on_commit (fun () ->
      if words > max_object_words then t.large_free <- (payload, words) :: t.large_free
      else begin
        let list = t.free.(tid).(class_of words) in
        list := payload :: !list
      end)

(* Header scan from data_start to the persisted high-water mark.
   Calls [f ~payload ~words ~allocated] for every decodable block. *)
let scan t f =
  let raw = t.m.Machine.raw_read in
  let hw = persisted_high_water t in
  let p = ref (Region.data_start t.region) in
  while !p < hw do
    let w = raw !p in
    if is_arena_header w && arena_kind w = kind_large then begin
      let h = raw (!p + 1) in
      let span =
        if is_block_header h then begin
          f ~payload:(!p + 2) ~words:(header_words h) ~allocated:(header_allocated h);
          (header_words h + 2 + arena_words - 1) / arena_words * arena_words
        end
        else arena_words
      in
      p := !p + span
    end
    else begin
      if is_arena_header w then begin
        (* Small-object arena: hop block headers until zero/garbage. *)
        let q = ref (!p + 1) in
        let continue = ref true in
        while !continue && !q < !p + arena_words do
          let h = raw !q in
          if is_block_header h then begin
            f ~payload:(!q + 1) ~words:(header_words h) ~allocated:(header_allocated h);
            q := !q + 1 + header_words h
          end
          else continue := false
        done
      end;
      (* Unrecognized arena start: leaked by a crash during refill. *)
      p := !p + arena_words
    end
  done

let recover region =
  let t = make region in
  t.m.Machine.meta_set Meta.alloc_high_water_idx (persisted_high_water t);
  scan t (fun ~payload ~words ~allocated ->
      if not allocated then begin
        if words > max_object_words then t.large_free <- (payload, words) :: t.large_free
        else begin
          let list = t.free.(0).(class_of words) in
          list := payload :: !list
        end
      end);
  t

let live_blocks t =
  let acc = ref [] in
  scan t (fun ~payload ~words ~allocated -> if allocated then acc := (payload, words) :: !acc);
  !acc

let free_words t =
  let free_list_words =
    Array.fold_left
      (fun acc per_thread ->
        let sum = ref acc in
        Array.iteri (fun c list -> sum := !sum + (List.length !list * classes.(c))) per_thread;
        !sum)
      0 t.free
  in
  let large = List.fold_left (fun acc (_, w) -> acc + w) 0 t.large_free in
  let arena_slack =
    Array.fold_left (fun acc a -> acc + max 0 (a.limit - a.cur)) 0 t.arenas
  in
  let unclaimed = Region.data_end t.region - t.m.Machine.meta_get Meta.alloc_high_water_idx in
  free_list_words + large + arena_slack + unclaimed
