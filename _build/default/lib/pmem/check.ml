type severity = Info | Warning | Corruption

type finding = { severity : severity; what : string }

type report = {
  findings : finding list;
  live_blocks : int;
  free_blocks : int;
  leaked_arenas : int;
  live_words : int;
}

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Corruption -> "CORRUPTION"

(* Mirrors of Alloc's header encodings (kept in sync by the
   cross-check test that formats a heap and fsck's it). *)
let arena_words = 2048
let is_arena_header w = w lsr 20 = 0xA4E4
let arena_kind w = w land 0xFFFFF
let is_block_header w = w lsr 24 = 0xB10C
let header_allocated w = w land (1 lsl 16) <> 0
let header_words w = w land 0xFFFF

let run region =
  let m = Region.machine region in
  let raw = m.Machine.raw_read in
  let findings = ref [] in
  let add severity fmt = Printf.ksprintf (fun what -> findings := { severity; what } :: !findings) fmt in
  let live = ref 0 and free = ref 0 and leaked = ref 0 and live_words = ref 0 in
  let data_start = Region.data_start region in
  let data_end = Region.data_end region in
  let hw = raw Region.high_water_addr in
  if hw < data_start || hw > data_end then
    add Corruption "high-water mark %d outside data area [%d, %d)" hw data_start data_end;
  (* Root slots must be 0 or point into the data area. *)
  for i = 0 to Region.roots region - 1 do
    let r = Region.root_get region i in
    if r <> 0 && (r < data_start || r >= data_end) then
      add Corruption "root %d points outside the data area (%d)" i r
  done;
  (* PTM log areas: status must be a known tag; armed entries must
     reference heap words. *)
  for tid = 0 to Region.max_threads region - 1 do
    let base = Region.log_base region ~tid in
    let status = raw base in
    if status <> 0 && status <> 1 && status <> 2 then
      add Corruption "log %d has unknown status %d" tid status
    else if status <> 0 then begin
      add Info "log %d active (status %d): crash recovery pending" tid status;
      let pos = ref (base + 2) in
      let limit = base + Region.log_words_per_thread region - 1 in
      while raw !pos <> 0 && !pos < limit do
        let addr = raw !pos in
        if addr < 0 || addr >= data_end then
          add Corruption "log %d entry references address %d out of range" tid addr;
        pos := !pos + 2
      done
    end
  done;
  (* Allocator arenas and block chains. *)
  let hw = min hw data_end in
  let p = ref data_start in
  while !p < hw do
    let w = raw !p in
    if is_arena_header w && arena_kind w = 1 then begin
      (* large chunk *)
      let h = raw (!p + 1) in
      if is_block_header h then begin
        let words = header_words h in
        if header_allocated h then begin
          incr live;
          live_words := !live_words + words
        end
        else incr free;
        let span = (words + 2 + arena_words - 1) / arena_words * arena_words in
        if !p + span > hw then
          add Corruption "large block at %d spans past the high-water mark" (!p + 1);
        p := !p + span
      end
      else begin
        add Warning "large arena at %d has no block header (crash leak)" !p;
        incr leaked;
        p := !p + arena_words
      end
    end
    else if is_arena_header w then begin
      (* small-object arena: walk the block chain *)
      let q = ref (!p + 1) in
      let fin = !p + arena_words in
      let continue = ref true in
      while !continue && !q < fin do
        let h = raw !q in
        if is_block_header h then begin
          let words = header_words h in
          if words = 0 || !q + 1 + words > fin then begin
            add Corruption "block at %d overflows its arena (size %d)" !q words;
            continue := false
          end
          else begin
            if header_allocated h then begin
              incr live;
              live_words := !live_words + words
            end
            else incr free;
            q := !q + 1 + words
          end
        end
        else begin
          if h <> 0 then add Warning "arena %d: scan stopped at garbage word %d" !p !q;
          continue := false
        end
      done;
      p := !p + arena_words
    end
    else begin
      if w <> 0 then add Warning "unrecognized arena start at %d (crash leak)" !p;
      incr leaked;
      p := !p + arena_words
    end
  done;
  {
    findings = List.rev !findings;
    live_blocks = !live;
    free_blocks = !free;
    leaked_arenas = !leaked;
    live_words = !live_words;
  }

let is_clean r = List.for_all (fun f -> f.severity <> Corruption) r.findings

let pp ppf r =
  Format.fprintf ppf "region check: %d live, %d free, %d leaked arenas, %d live words@."
    r.live_blocks r.free_blocks r.leaked_arenas r.live_words;
  List.iter
    (fun f -> Format.fprintf ppf "  [%s] %s@." (severity_name f.severity) f.what)
    r.findings;
  if is_clean r then Format.fprintf ppf "  no corruption found@."
