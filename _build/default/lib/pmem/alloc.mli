(** Recoverable persistent allocator (in the spirit of Makalu).

    Carves the region's data area into per-thread arenas taken from a
    persistent high-water mark; objects carry a one-word persistent
    header; size-class free lists are volatile and rebuilt after a
    crash by scanning block headers up to the high-water mark.

    Crash-atomicity with transactions: header writes and frees go
    through the caller-supplied transactional operations ({!tx_ops}),
    so an aborted or crashed transaction's allocations are rolled back
    with the rest of its write set, and a freed block only becomes
    reusable once the freeing transaction has committed (via the
    [on_commit] hook).  This mirrors how PMDK/Makalu integrate with
    persistent transactions.

    Arena refills are transaction-independent: the high-water mark is
    advanced, flushed and fenced {e before} the new arena is first
    used, so a crash can never hand out the same space twice. *)

type t

type tx_ops = {
  txr : int -> int;  (** transactional read of a heap word *)
  txw : int -> int -> unit;  (** transactional write *)
  on_commit : (unit -> unit) -> unit;  (** run after the tx durably commits *)
  on_abort : (unit -> unit) -> unit;  (** run if the tx aborts *)
}

val create : Region.t -> t
(** Allocator for a freshly created region. *)

val recover : Region.t -> t
(** Allocator for a re-attached region: scans block headers and
    rebuilds the volatile free lists.  Idempotent. *)

val max_object_words : int
(** Largest payload a single {!alloc} may request. *)

val alloc : t -> tx_ops -> words:int -> int
(** [alloc t ops ~words] returns the payload address of a block with at
    least [words] words, transactionally marked allocated.
    @raise Out_of_memory when the data area is exhausted. *)

val free : t -> tx_ops -> int -> unit
(** Transactionally mark the block owning this payload address free;
    it becomes reusable after commit.
    @raise Invalid_argument if the address is not a live payload. *)

val payload_words : t -> int -> int
(** Size of the block owning a payload address (untimed; for tests). *)

val live_blocks : t -> (int * int) list
(** [(payload_addr, words)] for every allocated block, by header scan
    (untimed; test oracle). *)

val free_words : t -> int
(** Total words on volatile free lists plus unused arena space beyond
    the per-thread bumps (approximate capacity oracle for tests). *)
