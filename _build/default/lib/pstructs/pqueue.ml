module Ptm = Pstm.Ptm

(* Descriptor: [head; tail].  Node: [value; next]. *)

type t = { ptm : Ptm.t; desc : int }

let create ptm =
  let desc =
    Ptm.atomic ptm (fun tx ->
        let d = Ptm.alloc tx 2 in
        Ptm.write tx d 0;
        Ptm.write tx (d + 1) 0;
        d)
  in
  { ptm; desc }

let attach ptm desc = { ptm; desc }
let descriptor t = t.desc

let enqueue tx t value =
  let node = Ptm.alloc tx 2 in
  Ptm.write tx node value;
  Ptm.write tx (node + 1) 0;
  let tail = Ptm.read tx (t.desc + 1) in
  if tail = 0 then Ptm.write tx t.desc node else Ptm.write tx (tail + 1) node;
  Ptm.write tx (t.desc + 1) node

let dequeue tx t =
  let head = Ptm.read tx t.desc in
  if head = 0 then None
  else begin
    let value = Ptm.read tx head in
    let next = Ptm.read tx (head + 1) in
    Ptm.write tx t.desc next;
    if next = 0 then Ptm.write tx (t.desc + 1) 0;
    Ptm.free tx head;
    Some value
  end

let is_empty tx t = Ptm.read tx t.desc = 0

let to_list t =
  let raw = (Ptm.machine t.ptm).Machine.raw_read in
  let rec go node acc = if node = 0 then List.rev acc else go (raw (node + 1)) (raw node :: acc) in
  go (raw t.desc) []
