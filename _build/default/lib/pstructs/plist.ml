module Ptm = Pstm.Ptm

(* Descriptor: one word, the head pointer.  Node: [key; value; next]. *)

type t = { ptm : Ptm.t; desc : int }

let create ptm =
  let desc =
    Ptm.atomic ptm (fun tx ->
        let d = Ptm.alloc tx 1 in
        Ptm.write tx d 0;
        d)
  in
  { ptm; desc }

let attach ptm desc = { ptm; desc }
let descriptor t = t.desc

(* Find the link word pointing at the first node with key >= [key]. *)
let find_slot tx t key =
  let rec go link =
    let node = Ptm.read tx link in
    if node = 0 then link
    else if Ptm.read tx node >= key then link
    else go (node + 2)
  in
  go t.desc

let insert tx t ~key ~value =
  assert (key > 0);
  let link = find_slot tx t key in
  let node = Ptm.read tx link in
  if node <> 0 && Ptm.read tx node = key then begin
    Ptm.write tx (node + 1) value;
    false
  end
  else begin
    let fresh = Ptm.alloc tx 3 in
    Ptm.write tx fresh key;
    Ptm.write tx (fresh + 1) value;
    Ptm.write tx (fresh + 2) node;
    Ptm.write tx link fresh;
    true
  end

let find tx t key =
  let link = find_slot tx t key in
  let node = Ptm.read tx link in
  if node <> 0 && Ptm.read tx node = key then Some (Ptm.read tx (node + 1)) else None

let remove tx t key =
  let link = find_slot tx t key in
  let node = Ptm.read tx link in
  if node <> 0 && Ptm.read tx node = key then begin
    Ptm.write tx link (Ptm.read tx (node + 2));
    Ptm.free tx node;
    true
  end
  else false

let length tx t =
  let rec go node acc = if node = 0 then acc else go (Ptm.read tx (node + 2)) (acc + 1) in
  go (Ptm.read tx t.desc) 0

let to_alist t =
  let raw = (Ptm.machine t.ptm).Machine.raw_read in
  let rec go node acc =
    if node = 0 then List.rev acc else go (raw (node + 2)) ((raw node, raw (node + 1)) :: acc)
  in
  go (raw t.desc) []
