module Ptm = Pstm.Ptm

(* Descriptor: [nbuckets; nsegments; dir...] where dir holds segment
   pointers.  Segment: 512 bucket-head words.  Node: [key; value; next]. *)

let seg_size = 512
let max_buckets = seg_size * seg_size

type t = { ptm : Ptm.t; desc : int; nbuckets : int }

let round_buckets n =
  let n = max seg_size (min n max_buckets) in
  (n + seg_size - 1) / seg_size * seg_size

let create ptm ~buckets =
  let nbuckets = round_buckets buckets in
  let nsegs = nbuckets / seg_size in
  (* One transaction per segment: a monolithic initialization of a
     large table would not fit any reasonable persistent log.  A crash
     mid-create leaks the partial table (it is not yet rooted), exactly
     as with any multi-transaction constructor. *)
  let desc =
    Ptm.atomic ptm (fun tx ->
        let d = Ptm.alloc tx (2 + nsegs) in
        Ptm.write tx d nbuckets;
        Ptm.write tx (d + 1) nsegs;
        d)
  in
  for s = 0 to nsegs - 1 do
    Ptm.atomic ptm (fun tx ->
        let seg = Ptm.alloc tx seg_size in
        for i = 0 to seg_size - 1 do
          Ptm.write tx (seg + i) 0
        done;
        Ptm.write tx (desc + 2 + s) seg)
  done;
  { ptm; desc; nbuckets }

let attach ptm desc =
  let nbuckets = (Ptm.machine ptm).Machine.raw_read desc in
  { ptm; desc; nbuckets }

let descriptor t = t.desc
let buckets t = t.nbuckets

(* Splitmix-style finalizer: high key bits must reach the low bucket
   bits (structured keys like TPC-C's (district << 34 | order) would
   otherwise collapse onto shared buckets). *)
let hash key =
  let h = key lxor (key lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x9E3779B97F4A7C1 in
  h lxor (h lsr 32)

(* Address of the bucket-head word for [key]. *)
let bucket_addr tx t key =
  let i = hash key land (t.nbuckets - 1) in
  let seg = Ptm.read tx (t.desc + 2 + (i / seg_size)) in
  seg + (i mod seg_size)

let rec chain_find tx node key =
  if node = 0 then None
  else if Ptm.read tx node = key then Some node
  else chain_find tx (Ptm.read tx (node + 2)) key

let put tx t ~key ~value =
  assert (key > 0);
  let head = bucket_addr tx t key in
  match chain_find tx (Ptm.read tx head) key with
  | Some node ->
    Ptm.write tx (node + 1) value;
    false
  | None ->
    let node = Ptm.alloc tx 3 in
    Ptm.write tx node key;
    Ptm.write tx (node + 1) value;
    Ptm.write tx (node + 2) (Ptm.read tx head);
    Ptm.write tx head node;
    true

let get tx t key =
  let head = bucket_addr tx t key in
  match chain_find tx (Ptm.read tx head) key with
  | Some node -> Some (Ptm.read tx (node + 1))
  | None -> None

let remove tx t key =
  let head = bucket_addr tx t key in
  let rec go prev_next node =
    if node = 0 then false
    else if Ptm.read tx node = key then begin
      Ptm.write tx prev_next (Ptm.read tx (node + 2));
      Ptm.free tx node;
      true
    end
    else go (node + 2) (Ptm.read tx (node + 2))
  in
  go head (Ptm.read tx head)

(* ---------- untimed oracles ---------- *)

let iter_raw t f =
  let raw = (Ptm.machine t.ptm).Machine.raw_read in
  let nsegs = raw (t.desc + 1) in
  for s = 0 to nsegs - 1 do
    let seg = raw (t.desc + 2 + s) in
    for i = 0 to seg_size - 1 do
      let node = ref (raw (seg + i)) in
      while !node <> 0 do
        f ((s * seg_size) + i) (raw !node) (raw (!node + 1));
        node := raw (!node + 2)
      done
    done
  done

let to_alist t =
  let acc = ref [] in
  iter_raw t (fun _ k v -> acc := (k, v) :: !acc);
  !acc

let chain_lengths t =
  let lens = Array.make t.nbuckets 0 in
  iter_raw t (fun b _ _ -> lens.(b) <- lens.(b) + 1);
  lens
