(** Persistent chained hash table over the PTM API (the DudeTM TPCC
    hash index and the memcached item index).

    Two-level bucket directory (a directory block of up to 512 segment
    pointers, each segment holding 512 bucket heads), so tables up to
    262144 buckets fit the allocator's block-size limit.  Buckets are
    singly-linked chains of [key; value; next] nodes.  The bucket count
    is fixed at creation (no online rehashing). Keys must be positive. *)

type t

val create : Pstm.Ptm.t -> buckets:int -> t
(** Rounded up to a multiple of 512, capped at 262144. *)

val attach : Pstm.Ptm.t -> int -> t
val descriptor : t -> int

val buckets : t -> int

val put : Pstm.Ptm.tx -> t -> key:int -> value:int -> bool
(** Upsert; [true] when the key was new. *)

val get : Pstm.Ptm.tx -> t -> int -> int option

val remove : Pstm.Ptm.tx -> t -> int -> bool

(** {1 Untimed oracles for tests} *)

val to_alist : t -> (int * int) list
val chain_lengths : t -> int array
