lib/pstructs/parray.mli: Pstm
