lib/pstructs/parray.ml: List Machine Pmem Printf Pstm
