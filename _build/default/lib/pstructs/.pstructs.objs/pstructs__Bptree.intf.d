lib/pstructs/bptree.mli: Pstm
