lib/pstructs/phashtable.mli: Pstm
