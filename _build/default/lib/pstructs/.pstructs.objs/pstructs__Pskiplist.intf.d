lib/pstructs/pskiplist.mli: Pstm
