lib/pstructs/pblob.mli: Pstm
