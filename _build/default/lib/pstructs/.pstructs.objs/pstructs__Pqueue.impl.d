lib/pstructs/pqueue.ml: List Machine Pstm
