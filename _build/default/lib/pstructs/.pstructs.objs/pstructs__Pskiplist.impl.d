lib/pstructs/pskiplist.ml: Array List Machine Printf Pstm Repro_util
