lib/pstructs/plist.mli: Pstm
