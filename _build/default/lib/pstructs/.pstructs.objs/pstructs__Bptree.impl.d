lib/pstructs/bptree.ml: List Machine Printf Pstm
