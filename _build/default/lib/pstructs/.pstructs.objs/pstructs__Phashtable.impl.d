lib/pstructs/phashtable.ml: Array Machine Pstm
