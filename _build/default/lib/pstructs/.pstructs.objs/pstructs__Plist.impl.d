lib/pstructs/plist.ml: List Machine Pstm
