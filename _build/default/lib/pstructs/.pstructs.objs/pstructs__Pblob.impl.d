lib/pstructs/pblob.ml: Bytes Char Machine Pmem Pstm String
