lib/pstructs/pqueue.mli: Pstm
