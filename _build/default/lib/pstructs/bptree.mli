(** Persistent B+Tree over the PTM API (the DudeTM benchmark's index).

    Fixed fanout, preemptive splitting on the way down (so a parent
    always has room for a promoted key), leaves chained for ordered
    iteration.  Deletion removes keys from leaves without rebalancing
    (the usual research-benchmark simplification; lookups are
    unaffected, space is reclaimed on the next insert into the leaf).

    All operations take an executing transaction, so callers can
    compose several structure operations atomically (e.g. a TPC-C
    new-order touching three indexes).  Keys must be positive. *)

type t

val fanout : int
(** Maximum keys per node. *)

val create : Pstm.Ptm.t -> t
(** Allocate an empty tree (runs its own transaction). *)

val attach : Pstm.Ptm.t -> int -> t
(** Re-attach to a tree by descriptor address (from a region root). *)

val descriptor : t -> int
(** Persistent descriptor address, for storing in a region root. *)

val insert : Pstm.Ptm.tx -> t -> key:int -> value:int -> bool
(** Upsert; [true] when the key was new, [false] when updated. *)

val lookup : Pstm.Ptm.tx -> t -> int -> int option

val remove : Pstm.Ptm.tx -> t -> int -> bool
(** [true] when the key was present. *)

val min_binding : Pstm.Ptm.tx -> t -> (int * int) option
(** Smallest key with its value, via the leftmost leaf. *)

val fold_range : Pstm.Ptm.tx -> t -> lo:int -> hi:int -> ('a -> int -> int -> 'a) -> 'a -> 'a
(** [fold_range tx t ~lo ~hi f acc] folds [f] over the bindings with
    [lo <= key <= hi] in ascending key order (the YCSB scan). *)

(** {1 Untimed oracles for tests} *)

val to_alist : t -> (int * int) list
(** Sorted key/value pairs, by raw leaf-chain walk. *)

val check_invariants : t -> unit
(** Raw structural check: sorted keys, uniform leaf depth, fanout
    bounds, consistent leaf chain.  Raises [Failure] on violation. *)
