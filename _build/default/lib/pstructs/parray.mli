(** Persistent fixed-length array over the PTM API.

    The pattern every workload hand-rolls (accounts, districts, stock
    rows), packaged: a length header plus bounds-checked transactional
    element access.  Arrays longer than one allocator block are backed
    by a two-level chunk directory, transparent to the caller. *)

type t

val max_length : int

val create : Pstm.Ptm.tx -> init:int -> int -> t
(** [create tx ~init len] allocates and fills a [len]-element array.
    The enclosing transaction logs one entry per element, so the PTM's
    per-thread log must hold at least [len + len/256 + 2] entries;
    split very large initializations across transactions. *)

val attach : Pstm.Ptm.t -> int -> t
val descriptor : t -> int

val length : t -> int

val get : Pstm.Ptm.tx -> t -> int -> int
(** @raise Invalid_argument on out-of-bounds. *)

val set : Pstm.Ptm.tx -> t -> int -> int -> unit
(** @raise Invalid_argument on out-of-bounds. *)

val fold : Pstm.Ptm.tx -> t -> ('a -> int -> 'a) -> 'a -> 'a
(** Fold over elements in index order, transactionally. *)

val to_list_raw : Pstm.Ptm.t -> t -> int list
(** Untimed oracle. *)
