(** Persistent FIFO queue over the PTM API.

    Singly-linked, with head/tail pointers in a two-word descriptor.
    Transactional enqueue/dequeue compose with other structures (the
    TPC-C new-order list uses it). *)

type t

val create : Pstm.Ptm.t -> t
val attach : Pstm.Ptm.t -> int -> t
val descriptor : t -> int

val enqueue : Pstm.Ptm.tx -> t -> int -> unit
val dequeue : Pstm.Ptm.tx -> t -> int option
val is_empty : Pstm.Ptm.tx -> t -> bool

(** {1 Untimed oracle} *)

val to_list : t -> int list
(** Front to back. *)
