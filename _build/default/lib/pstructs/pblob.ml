module Ptm = Pstm.Ptm

(* Layout: word 0 = byte length; words 1.. = bytes packed
   little-endian, 7 per word (8 would not fit OCaml's 63-bit int). *)

type t = int

let bytes_per_word = 7

let max_bytes = (Pmem.Alloc.max_object_words - 1) * bytes_per_word

let data_words bytes = (bytes + bytes_per_word - 1) / bytes_per_word

let words_for bytes = 1 + data_words bytes

let pack s word_idx =
  let len = String.length s in
  let base = word_idx * bytes_per_word in
  let w = ref 0 in
  for b = bytes_per_word - 1 downto 0 do
    let i = base + b in
    w := (!w lsl 8) lor (if i < len then Char.code s.[i] else 0)
  done;
  !w

let unpack buf w word_idx len =
  let base = word_idx * bytes_per_word in
  let v = ref w in
  for b = 0 to bytes_per_word - 1 do
    let i = base + b in
    if i < len then Bytes.set buf i (Char.chr (!v land 0xFF));
    v := !v lsr 8
  done

let alloc tx s =
  let len = String.length s in
  if len > max_bytes then invalid_arg "Pblob.alloc: too large";
  let blob = Ptm.alloc tx (words_for len) in
  Ptm.write tx blob len;
  for w = 0 to data_words len - 1 do
    Ptm.write tx (blob + 1 + w) (pack s w)
  done;
  blob

let free tx blob = Ptm.free tx blob

let length tx blob = Ptm.read tx blob

let get tx blob =
  let len = length tx blob in
  let buf = Bytes.create len in
  for w = 0 to data_words len - 1 do
    unpack buf (Ptm.read tx (blob + 1 + w)) w len
  done;
  Bytes.unsafe_to_string buf

let set tx blob s =
  let len = length tx blob in
  if String.length s <> len then invalid_arg "Pblob.set: length mismatch";
  for w = 0 to data_words len - 1 do
    Ptm.write tx (blob + 1 + w) (pack s w)
  done

let equal_string tx blob s =
  let len = length tx blob in
  if String.length s <> len then false
  else begin
    let words = data_words len in
    let rec go w =
      w >= words || (Ptm.read tx (blob + 1 + w) = pack s w && go (w + 1))
    in
    go 0
  end

let raw_get ptm blob =
  let raw = (Ptm.machine ptm).Machine.raw_read in
  let len = raw blob in
  let buf = Bytes.create len in
  for w = 0 to data_words len - 1 do
    unpack buf (raw (blob + 1 + w)) w len
  done;
  Bytes.unsafe_to_string buf
