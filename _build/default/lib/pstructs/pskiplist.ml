module Ptm = Pstm.Ptm

(* Descriptor: [level_hint; head_tower...] where the head tower holds
   max_level forward pointers.  Node: [key; value; level; next_0 ..
   next_{level-1}] (3 + level words). *)

let max_level = 12

let d_head = 1 (* offset of the head tower within the descriptor *)

type t = { ptm : Ptm.t; desc : int; rng : Repro_util.Rng.t }

let create ptm =
  let desc =
    Ptm.atomic ptm (fun tx ->
        let d = Ptm.alloc tx (1 + max_level) in
        Ptm.write tx d 1;
        for l = 0 to max_level - 1 do
          Ptm.write tx (d + d_head + l) 0
        done;
        d)
  in
  { ptm; desc; rng = Repro_util.Rng.create 0x5C1B }

let attach ptm desc = { ptm; desc; rng = Repro_util.Rng.create 0x5C1B }

let descriptor t = t.desc

let node_key tx n = Ptm.read tx n
let node_value_addr n = n + 1
let node_level tx n = Ptm.read tx (n + 2)
let node_next_addr n l = n + 3 + l

let random_level t =
  let rec go l = if l < max_level && Repro_util.Rng.bool t.rng then go (l + 1) else l in
  go 1

(* For each level, the address of the forward-pointer word after which
   [key] would sit.  preds.(l) is a heap address whose content is the
   first node at level l with key >= [key] (or 0). *)
let find_preds tx t key preds =
  let level_at l cursor =
    (* advance along level l starting from forward-pointer addr [cursor] *)
    let rec go cursor =
      let next = Ptm.read tx cursor in
      if next <> 0 && node_key tx next < key then go (node_next_addr next l) else cursor
    in
    go cursor
  in
  let cursor = ref (t.desc + d_head + (max_level - 1)) in
  for l = max_level - 1 downto 0 do
    (* Drop from the tower above: same node, one level down. *)
    let start =
      if l = max_level - 1 then !cursor
      else begin
        (* !cursor is addr of next_(l+1) of some node (or head); the
           corresponding level-l pointer is one word before for nodes,
           or the head slot. *)
        let above = !cursor in
        if above >= t.desc + d_head && above < t.desc + d_head + max_level then
          t.desc + d_head + l
        else above - 1
      end
    in
    let p = level_at l start in
    preds.(l) <- p;
    cursor := p
  done

let find tx t key =
  let preds = Array.make max_level 0 in
  find_preds tx t key preds;
  let next = Ptm.read tx preds.(0) in
  if next <> 0 && node_key tx next = key then Some (Ptm.read tx (node_value_addr next))
  else None

let insert tx t ~key ~value =
  assert (key > 0);
  let preds = Array.make max_level 0 in
  find_preds tx t key preds;
  let next = Ptm.read tx preds.(0) in
  if next <> 0 && node_key tx next = key then begin
    Ptm.write tx (node_value_addr next) value;
    false
  end
  else begin
    let level = random_level t in
    let n = Ptm.alloc tx (3 + level) in
    Ptm.write tx n key;
    Ptm.write tx (node_value_addr n) value;
    Ptm.write tx (n + 2) level;
    for l = 0 to level - 1 do
      Ptm.write tx (node_next_addr n l) (Ptm.read tx preds.(l));
      Ptm.write tx preds.(l) n
    done;
    true
  end

let remove tx t key =
  let preds = Array.make max_level 0 in
  find_preds tx t key preds;
  let victim = Ptm.read tx preds.(0) in
  if victim = 0 || node_key tx victim <> key then false
  else begin
    let level = node_level tx victim in
    for l = 0 to level - 1 do
      (* preds.(l) may not point at the victim at upper levels if the
         victim's tower is shorter than others passing by; only unlink
         where it does. *)
      if Ptm.read tx preds.(l) = victim then
        Ptm.write tx preds.(l) (Ptm.read tx (node_next_addr victim l))
    done;
    Ptm.free tx victim;
    true
  end

let fold_range tx t ~lo ~hi f acc =
  assert (lo <= hi);
  let preds = Array.make max_level 0 in
  find_preds tx t lo preds;
  let rec go node acc =
    if node = 0 then acc
    else begin
      let k = node_key tx node in
      if k > hi then acc
      else go (Ptm.read tx (node_next_addr node 0)) (f acc k (Ptm.read tx (node_value_addr node)))
    end
  in
  go (Ptm.read tx preds.(0)) acc

(* ---------- untimed oracles ---------- *)

let to_alist t =
  let raw = (Ptm.machine t.ptm).Machine.raw_read in
  let rec go node acc =
    if node = 0 then List.rev acc
    else go (raw (node + 3)) ((raw node, raw (node + 1)) :: acc)
  in
  go (raw (t.desc + d_head)) []

let check_invariants t =
  let raw = (Ptm.machine t.ptm).Machine.raw_read in
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Level-0 keys strictly ascending. *)
  let level0 = List.map fst (to_alist t) in
  let rec ascending = function
    | a :: (b :: _ as rest) -> if a >= b then fail "level 0 not sorted" else ascending rest
    | _ -> ()
  in
  ascending level0;
  (* Every upper level is a sorted subsequence of level 0. *)
  for l = 1 to max_level - 1 do
    let rec walk node acc =
      if node = 0 then List.rev acc
      else begin
        if raw (node + 2) <= l then fail "node on level above its height";
        walk (raw (node + 3 + l)) (raw node :: acc)
      end
    in
    let keys = walk (raw (t.desc + d_head + l)) [] in
    ascending keys;
    List.iter (fun k -> if not (List.mem k level0) then fail "upper-level key missing below") keys
  done
