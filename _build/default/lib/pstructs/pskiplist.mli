(** Persistent skiplist map over the PTM API.

    An ordered index with probabilistic balancing — the structure used
    by several persistent-memory key/value stores (and a popular
    subject of hand-crafted NVM data-structure papers the introduction
    cites).  Expected O(log n) search with no rebalancing writes,
    which keeps transactions' write sets small compared to a B+Tree
    split chain.

    Tower heights are drawn from a deterministic per-structure RNG
    (p = 1/2, up to {!max_level} levels), so runs are reproducible.
    Keys must be positive. *)

type t

val max_level : int

val create : Pstm.Ptm.t -> t
val attach : Pstm.Ptm.t -> int -> t
val descriptor : t -> int

val insert : Pstm.Ptm.tx -> t -> key:int -> value:int -> bool
(** Upsert; [true] when the key was new. *)

val find : Pstm.Ptm.tx -> t -> int -> int option
val remove : Pstm.Ptm.tx -> t -> int -> bool

val fold_range : Pstm.Ptm.tx -> t -> lo:int -> hi:int -> ('a -> int -> int -> 'a) -> 'a -> 'a
(** Ascending fold over [lo <= key <= hi] along level 0. *)

(** {1 Untimed oracles for tests} *)

val to_alist : t -> (int * int) list

val check_invariants : t -> unit
(** Every level sorted; every tower member of level 0; raises
    [Failure] on violation. *)
