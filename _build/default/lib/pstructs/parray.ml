module Ptm = Pstm.Ptm

(* Descriptor: [length; chunk_0; chunk_1; ...] with fixed 256-element
   chunks, so the directory itself stays within one block. *)

let chunk_elems = 256
let max_chunks = Pmem.Alloc.max_object_words - 1
let max_length = chunk_elems * max_chunks

type t = { desc : int; len : int }

let create tx ~init len =
  if len <= 0 || len > max_length then invalid_arg "Parray.create: bad length";
  let chunks = (len + chunk_elems - 1) / chunk_elems in
  let desc = Ptm.alloc tx (1 + chunks) in
  Ptm.write tx desc len;
  for c = 0 to chunks - 1 do
    let chunk = Ptm.alloc tx chunk_elems in
    let limit = min chunk_elems (len - (c * chunk_elems)) in
    for i = 0 to limit - 1 do
      Ptm.write tx (chunk + i) init
    done;
    Ptm.write tx (desc + 1 + c) chunk
  done;
  { desc; len }

let attach ptm desc = { desc; len = (Ptm.machine ptm).Machine.raw_read desc }

let descriptor t = t.desc

let length t = t.len

let element_addr tx t i =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Parray: index %d out of bounds" i);
  let chunk = Ptm.read tx (t.desc + 1 + (i / chunk_elems)) in
  chunk + (i mod chunk_elems)

let get tx t i = Ptm.read tx (element_addr tx t i)

let set tx t i v = Ptm.write tx (element_addr tx t i) v

let fold tx t f acc =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (get tx t i)
  done;
  !acc

let to_list_raw ptm t =
  let raw = (Ptm.machine ptm).Machine.raw_read in
  List.init t.len (fun i ->
      let chunk = raw (t.desc + 1 + (i / chunk_elems)) in
      raw (chunk + (i mod chunk_elems)))
