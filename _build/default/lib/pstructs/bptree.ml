module Ptm = Pstm.Ptm

(* Node layout (node_words words, one allocator block):
     word 0           : (is_leaf << 16) | nkeys
     words 1 .. b     : keys
     leaf:     words b+1 .. 2b : values;  word 2b+1 : next-leaf pointer
     internal: words b+1 .. 2b+1 : children (nkeys+1 used)           *)

let fanout = 14
let b = fanout
let node_words = (2 * b) + 2

let off_meta = 0
let off_key i = 1 + i
let off_val i = 1 + b + i
let off_child i = 1 + b + i
let off_next = (2 * b) + 1

let meta ~leaf ~nkeys = ((if leaf then 1 else 0) lsl 16) lor nkeys
let meta_is_leaf m = m lsr 16 = 1
let meta_nkeys m = m land 0xFFFF

type t = { ptm : Ptm.t; desc : int }

let create ptm =
  let desc = Ptm.atomic ptm (fun tx ->
      let d = Ptm.alloc tx 1 in
      Ptm.write tx d 0;
      d)
  in
  { ptm; desc }

let attach ptm desc = { ptm; desc }

let descriptor t = t.desc

let new_leaf tx =
  let n = Ptm.alloc tx node_words in
  Ptm.write tx (n + off_meta) (meta ~leaf:true ~nkeys:0);
  Ptm.write tx (n + off_next) 0;
  n

(* Position of the first key >= [key] among the node's [nkeys] keys. *)
let find_pos tx node nkeys key =
  let rec go i =
    if i >= nkeys then i
    else if Ptm.read tx (node + off_key i) >= key then i
    else go (i + 1)
  in
  go 0

(* Split full child [ci] of [parent] (which has room).  B+Tree split:
   leaves copy the separator up, internals move it up. *)
let split_child tx parent pi ci =
  let pmeta = Ptm.read tx (parent + off_meta) in
  let pn = meta_nkeys pmeta in
  let cmeta = Ptm.read tx (ci + off_meta) in
  let leaf = meta_is_leaf cmeta in
  let right = Ptm.alloc tx node_words in
  let h = (b + 1) / 2 in
  let sep =
    if leaf then begin
      (* right takes keys[h..b-1] *)
      let rn = b - h in
      for i = 0 to rn - 1 do
        Ptm.write tx (right + off_key i) (Ptm.read tx (ci + off_key (h + i)));
        Ptm.write tx (right + off_val i) (Ptm.read tx (ci + off_val (h + i)))
      done;
      Ptm.write tx (right + off_meta) (meta ~leaf:true ~nkeys:rn);
      Ptm.write tx (right + off_next) (Ptm.read tx (ci + off_next));
      Ptm.write tx (ci + off_next) right;
      Ptm.write tx (ci + off_meta) (meta ~leaf:true ~nkeys:h);
      Ptm.read tx (right + off_key 0)
    end
    else begin
      (* median key at h-1 moves up; right takes keys[h..b-1] and
         children[h..b] *)
      let rn = b - h in
      for i = 0 to rn - 1 do
        Ptm.write tx (right + off_key i) (Ptm.read tx (ci + off_key (h + i)))
      done;
      for i = 0 to rn do
        Ptm.write tx (right + off_child i) (Ptm.read tx (ci + off_child (h + i)))
      done;
      Ptm.write tx (right + off_meta) (meta ~leaf:false ~nkeys:rn);
      Ptm.write tx (ci + off_meta) (meta ~leaf:false ~nkeys:(h - 1));
      Ptm.read tx (ci + off_key (h - 1))
    end
  in
  (* Insert separator and right pointer into the parent at position pi. *)
  for i = pn - 1 downto pi do
    Ptm.write tx (parent + off_key (i + 1)) (Ptm.read tx (parent + off_key i))
  done;
  for i = pn downto pi + 1 do
    Ptm.write tx (parent + off_child (i + 1)) (Ptm.read tx (parent + off_child i))
  done;
  Ptm.write tx (parent + off_key pi) sep;
  Ptm.write tx (parent + off_child (pi + 1)) right;
  Ptm.write tx (parent + off_meta) (meta ~leaf:false ~nkeys:(pn + 1))

let is_full tx node = meta_nkeys (Ptm.read tx (node + off_meta)) = b

let insert tx t ~key ~value =
  assert (key > 0);
  let root = Ptm.read tx t.desc in
  let root =
    if root = 0 then begin
      let leaf = new_leaf tx in
      Ptm.write tx t.desc leaf;
      leaf
    end
    else if is_full tx root then begin
      let nroot = Ptm.alloc tx node_words in
      Ptm.write tx (nroot + off_meta) (meta ~leaf:false ~nkeys:0);
      Ptm.write tx (nroot + off_child 0) root;
      split_child tx nroot 0 root;
      Ptm.write tx t.desc nroot;
      nroot
    end
    else root
  in
  let rec descend node =
    let m = Ptm.read tx (node + off_meta) in
    let nkeys = meta_nkeys m in
    if meta_is_leaf m then begin
      let pos = find_pos tx node nkeys key in
      if pos < nkeys && Ptm.read tx (node + off_key pos) = key then begin
        Ptm.write tx (node + off_val pos) value;
        false
      end
      else begin
        for i = nkeys - 1 downto pos do
          Ptm.write tx (node + off_key (i + 1)) (Ptm.read tx (node + off_key i));
          Ptm.write tx (node + off_val (i + 1)) (Ptm.read tx (node + off_val i))
        done;
        Ptm.write tx (node + off_key pos) key;
        Ptm.write tx (node + off_val pos) value;
        Ptm.write tx (node + off_meta) (meta ~leaf:true ~nkeys:(nkeys + 1));
        true
      end
    end
    else begin
      let pos = find_pos tx node nkeys key in
      (* Children of key[pos]: left subtree has keys < key[pos]; equal
         keys live in the right subtree (separator = right's min). *)
      let pos = if pos < nkeys && Ptm.read tx (node + off_key pos) = key then pos + 1 else pos in
      let child = Ptm.read tx (node + off_child pos) in
      if is_full tx child then begin
        split_child tx node pos child;
        let sep = Ptm.read tx (node + off_key pos) in
        let pos = if key >= sep then pos + 1 else pos in
        descend (Ptm.read tx (node + off_child pos))
      end
      else descend child
    end
  in
  descend root

let rec find_leaf tx node key =
  let m = Ptm.read tx (node + off_meta) in
  let nkeys = meta_nkeys m in
  if meta_is_leaf m then node
  else begin
    let pos = find_pos tx node nkeys key in
    let pos = if pos < nkeys && Ptm.read tx (node + off_key pos) = key then pos + 1 else pos in
    find_leaf tx (Ptm.read tx (node + off_child pos)) key
  end

let lookup tx t key =
  let root = Ptm.read tx t.desc in
  if root = 0 then None
  else begin
    let leaf = find_leaf tx root key in
    let nkeys = meta_nkeys (Ptm.read tx (leaf + off_meta)) in
    let pos = find_pos tx leaf nkeys key in
    if pos < nkeys && Ptm.read tx (leaf + off_key pos) = key then
      Some (Ptm.read tx (leaf + off_val pos))
    else None
  end

let remove tx t key =
  let root = Ptm.read tx t.desc in
  if root = 0 then false
  else begin
    let leaf = find_leaf tx root key in
    let nkeys = meta_nkeys (Ptm.read tx (leaf + off_meta)) in
    let pos = find_pos tx leaf nkeys key in
    if pos < nkeys && Ptm.read tx (leaf + off_key pos) = key then begin
      for i = pos to nkeys - 2 do
        Ptm.write tx (leaf + off_key i) (Ptm.read tx (leaf + off_key (i + 1)));
        Ptm.write tx (leaf + off_val i) (Ptm.read tx (leaf + off_val (i + 1)))
      done;
      Ptm.write tx (leaf + off_meta) (meta ~leaf:true ~nkeys:(nkeys - 1));
      true
    end
    else false
  end

let min_binding tx t =
  let root = Ptm.read tx t.desc in
  if root = 0 then None
  else begin
    (* Walk the leftmost spine, then the leaf chain past empty leaves. *)
    let rec leftmost node =
      let m = Ptm.read tx (node + off_meta) in
      if meta_is_leaf m then node else leftmost (Ptm.read tx (node + off_child 0))
    in
    let rec first_nonempty leaf =
      if leaf = 0 then None
      else begin
        let m = Ptm.read tx (leaf + off_meta) in
        if meta_nkeys m > 0 then
          Some (Ptm.read tx (leaf + off_key 0), Ptm.read tx (leaf + off_val 0))
        else first_nonempty (Ptm.read tx (leaf + off_next))
      end
    in
    first_nonempty (leftmost root)
  end

let fold_range tx t ~lo ~hi f acc =
  assert (lo <= hi);
  let root = Ptm.read tx t.desc in
  if root = 0 then acc
  else begin
    (* Descend to the leaf that would hold [lo], then ride the chain. *)
    let rec walk leaf acc =
      if leaf = 0 then acc
      else begin
        let nkeys = meta_nkeys (Ptm.read tx (leaf + off_meta)) in
        let acc = ref acc in
        let past_hi = ref false in
        for i = 0 to nkeys - 1 do
          let k = Ptm.read tx (leaf + off_key i) in
          if k > hi then past_hi := true
          else if k >= lo then acc := f !acc k (Ptm.read tx (leaf + off_val i))
        done;
        if !past_hi then !acc else walk (Ptm.read tx (leaf + off_next)) !acc
      end
    in
    walk (find_leaf tx root lo) acc
  end

(* ---------- untimed oracles ---------- *)

let to_alist t =
  let raw = (Ptm.machine t.ptm).Machine.raw_read in
  let root = raw t.desc in
  if root = 0 then []
  else begin
    let rec leftmost node =
      let m = raw (node + off_meta) in
      if meta_is_leaf m then node else leftmost (raw (node + off_child 0))
    in
    let rec walk leaf acc =
      if leaf = 0 then List.rev acc
      else begin
        let nkeys = meta_nkeys (raw (leaf + off_meta)) in
        let acc = ref acc in
        for i = 0 to nkeys - 1 do
          acc := (raw (leaf + off_key i), raw (leaf + off_val i)) :: !acc
        done;
        walk (raw (leaf + off_next)) !acc
      end
    in
    walk (leftmost root) []
  end

let check_invariants t =
  let raw = (Ptm.machine t.ptm).Machine.raw_read in
  let fail fmt = Printf.ksprintf failwith fmt in
  let root = raw t.desc in
  if root <> 0 then begin
    let leaves = ref [] in
    (* Returns leaf depth; checks key bounds (lo, hi are exclusive
       bounds; 0 = unbounded). *)
    let rec check node lo hi =
      let m = raw (node + off_meta) in
      let nkeys = meta_nkeys m in
      if nkeys > b then fail "node %d overfull (%d keys)" node nkeys;
      let prev = ref lo in
      for i = 0 to nkeys - 1 do
        let k = raw (node + off_key i) in
        if !prev <> 0 && k < !prev then fail "node %d keys out of order" node;
        if hi <> 0 && k >= hi then fail "node %d key %d >= upper bound %d" node k hi;
        if lo <> 0 && k < lo then fail "node %d key %d < lower bound %d" node k lo;
        prev := k
      done;
      if meta_is_leaf m then begin
        leaves := node :: !leaves;
        1
      end
      else begin
        if nkeys = 0 && node <> root then fail "empty internal node %d" node;
        let depth = ref 0 in
        for i = 0 to nkeys do
          let lo' = if i = 0 then lo else raw (node + off_key (i - 1)) in
          let hi' = if i = nkeys then hi else raw (node + off_key i) in
          let d = check (raw (node + off_child i)) lo' hi' in
          if !depth = 0 then depth := d
          else if d <> !depth then fail "uneven leaf depth under node %d" node
        done;
        !depth + 1
      end
    in
    ignore (check root 0 0);
    (* The leaf chain must visit exactly the leaves, in key order. *)
    let chain = ref [] in
    let rec leftmost node =
      let m = raw (node + off_meta) in
      if meta_is_leaf m then node else leftmost (raw (node + off_child 0))
    in
    let cursor = ref (leftmost root) in
    while !cursor <> 0 do
      chain := !cursor :: !chain;
      cursor := raw (!cursor + off_next)
    done;
    let sorted_set l = List.sort_uniq compare l in
    if sorted_set !chain <> sorted_set !leaves then fail "leaf chain and tree leaves disagree";
    let keys = List.map fst (to_alist t) in
    if List.sort compare keys <> keys then fail "leaf chain keys not sorted"
  end
