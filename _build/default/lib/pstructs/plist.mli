(** Persistent sorted linked-list map over the PTM API.

    The classic STM microbenchmark structure: O(n) operations with a
    long read chain, useful for stressing read-set validation.  Keys
    must be positive. *)

type t

val create : Pstm.Ptm.t -> t
val attach : Pstm.Ptm.t -> int -> t
val descriptor : t -> int

val insert : Pstm.Ptm.tx -> t -> key:int -> value:int -> bool
(** Upsert; [true] when new. *)

val find : Pstm.Ptm.tx -> t -> int -> int option
val remove : Pstm.Ptm.tx -> t -> int -> bool
val length : Pstm.Ptm.tx -> t -> int

(** {1 Untimed oracle} *)

val to_alist : t -> (int * int) list
(** Sorted pairs by raw walk. *)
