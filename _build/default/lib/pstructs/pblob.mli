(** Persistent byte strings (blobs) over the PTM API.

    Variable-length byte sequences packed 7-to-a-word (OCaml ints
    hold 63 bits), with the length
    in a header word — keys and values of real stores are bytes, not
    words, and this module gives the examples and workloads a faithful
    way to hold them.  A blob is immutable in size; contents can be
    overwritten transactionally. *)

type t = int
(** A blob is identified by its payload address. *)

val max_bytes : int
(** Largest storable blob (fits the allocator's block-size limit). *)

val words_for : int -> int
(** Allocator footprint (header + packed data) for a byte length. *)

val alloc : Pstm.Ptm.tx -> string -> t
(** Allocate and fill a blob from an OCaml string. *)

val free : Pstm.Ptm.tx -> t -> unit

val length : Pstm.Ptm.tx -> t -> int

val get : Pstm.Ptm.tx -> t -> string
(** Read the whole blob (performs the word loads a real server would). *)

val set : Pstm.Ptm.tx -> t -> string -> unit
(** Overwrite contents; the new string must have exactly the blob's
    length.  @raise Invalid_argument otherwise. *)

val equal_string : Pstm.Ptm.tx -> t -> string -> bool
(** Compare against a string, short-circuiting on the first
    mismatching word (the memcached key-comparison pattern). *)

val raw_get : Pstm.Ptm.t -> t -> string
(** Untimed read for tests and recovery oracles. *)
