(* A memcached-style persistent key/value store that survives a crash
   and keeps serving: the §IV-E scenario as a library user would write
   it.

     dune exec examples/kv_rebuild.exe *)

open Core

let items = 400

let () =
  let sim, _m, ptm =
    simulated_ptm ~model:Config.optane_eadr ~algorithm:Ptm.Redo ~heap_words:(1 lsl 21) ()
  in
  (* Build the store: hash index over value blobs. *)
  let index = Phashtable.create ptm ~buckets:(2 * items) in
  Ptm.root_set ptm 0 (Phashtable.descriptor index);
  for id = 1 to items do
    Ptm.atomic ptm (fun tx ->
        let blob = Ptm.alloc tx Memcached.value_words in
        for i = 0 to Memcached.value_words - 1 do
          Ptm.write tx (blob + i) (id lxor i)
        done;
        ignore (Phashtable.put tx index ~key:id ~value:blob))
  done;
  Sim.persist_all sim;
  Printf.printf "populated %d items (%d-word values)\n" items Memcached.value_words;

  (* Serve a 50/50 get/set mix until the power fails. *)
  let served = ref 0 in
  for tid = 0 to 1 do
    ignore
      (Sim.spawn sim (fun () ->
           let rng = Rng.create (tid + 7) in
           for _ = 1 to 100_000 do
             let id = 1 + Rng.int rng items in
             Ptm.atomic ptm (fun tx ->
                 match Phashtable.get tx index id with
                 | None -> ()
                 | Some blob ->
                   if Rng.bool rng then
                     for i = 0 to Memcached.value_words - 1 do
                       Ptm.write tx (blob + i) (id + i)
                     done
                   else
                     for i = 0 to Memcached.value_words - 1 do
                       ignore (Ptm.read tx (blob + i))
                     done);
             incr served
           done))
  done;
  Sim.run ~crash_at:2_000_000 sim;
  Printf.printf "served ~%d requests before the power failed\n" !served;

  (* Recover and audit every value blob: a value must be entirely old
     (id lxor i) or entirely new (id + i) — never torn. *)
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  let ptm' = Ptm.recover ~algorithm:Ptm.Redo m' in
  let index' = Phashtable.attach ptm' (Ptm.root_get ptm' 0) in
  let torn = ref 0 and intact = ref 0 in
  List.iter
    (fun (id, blob) ->
      let all_match f =
        let ok = ref true in
        for i = 0 to Memcached.value_words - 1 do
          if m'.Machine.raw_read (blob + i) <> f i then ok := false
        done;
        !ok
      in
      if all_match (fun i -> id lxor i) || all_match (fun i -> id + i) then incr intact
      else incr torn)
    (Phashtable.to_alist index');
  Printf.printf "after recovery: %d values intact, %d torn\n" !intact !torn;
  if !torn > 0 then failwith "atomicity violated";
  Printf.printf "no torn values: every SET was all-or-nothing\n"
