(* Failure atomicity under fire: random transfers between accounts
   with power failures at random instants, across every persistent
   durability domain and both logging algorithms.

     dune exec examples/bank_transfer.exe

   The invariant: the sum of all balances never changes, no matter
   when power fails, because each transfer is one PTM transaction. *)

open Core

let accounts = 64
let initial_balance = 1_000

let run_one ~model ~algorithm ~crash_at ~seed =
  let sim, _m, ptm = simulated_ptm ~model ~algorithm ~heap_words:(1 lsl 19) () in
  let base =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx accounts in
        for i = 0 to accounts - 1 do
          Ptm.write tx (a + i) initial_balance
        done;
        a)
  in
  Ptm.root_set ptm 0 base;
  Sim.persist_all sim;
  for tid = 0 to 3 do
    ignore
      (Sim.spawn sim (fun () ->
           let rng = Rng.create (seed + tid) in
           for _ = 1 to 50_000 do
             let src = Rng.int rng accounts and dst = Rng.int rng accounts in
             let amount = 1 + Rng.int rng 20 in
             Ptm.atomic ptm (fun tx ->
                 let s = Ptm.read tx (base + src) in
                 if s >= amount then begin
                   Ptm.write tx (base + src) (s - amount);
                   Ptm.write tx (base + dst) (Ptm.read tx (base + dst) + amount)
                 end)
           done))
  done;
  Sim.run ~crash_at sim;
  (* Reboot, recover, audit. *)
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  let ptm' = Ptm.recover ~algorithm m' in
  let base' = Ptm.root_get ptm' 0 in
  let total = ref 0 in
  for i = 0 to accounts - 1 do
    total := !total + m'.Machine.raw_read (base' + i)
  done;
  !total

let () =
  let expected = accounts * initial_balance in
  let rng = Rng.create 2024 in
  List.iter
    (fun (model : Config.model) ->
      List.iter
        (fun algorithm ->
          let failures = ref 0 in
          for trial = 1 to 5 do
            let crash_at = 20_000 + Rng.int rng 400_000 in
            let total = run_one ~model ~algorithm ~crash_at ~seed:(trial * 17) in
            if total <> expected then incr failures
          done;
          Printf.printf "%-12s %-4s : %s (sum preserved across 5 random crashes)\n"
            model.Config.model_name (Ptm.algorithm_name algorithm)
            (if !failures = 0 then "OK" else Printf.sprintf "FAILED x%d" !failures))
        [ Ptm.Redo; Ptm.Undo ])
    [ Config.optane_adr; Config.optane_eadr; Config.pdram; Config.pdram_lite ]
