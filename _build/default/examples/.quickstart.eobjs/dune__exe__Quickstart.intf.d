examples/quickstart.mli:
