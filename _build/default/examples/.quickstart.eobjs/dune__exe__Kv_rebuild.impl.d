examples/kv_rebuild.ml: Config Core List Machine Memcached Phashtable Printf Ptm Rng Sim
