examples/kv_rebuild.mli:
