examples/two_lives.mli:
