examples/quickstart.ml: Bptree Config Core List Printf Ptm Rng Sim
