examples/htm_acceleration.mli:
