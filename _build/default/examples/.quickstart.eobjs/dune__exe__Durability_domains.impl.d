examples/durability_domains.ml: Config Core Driver Format List Ptm Sim Table Tatp
