examples/durability_domains.mli:
