examples/bank_transfer.ml: Config Core List Machine Printf Ptm Rng Sim
