examples/htm_acceleration.ml: Config Core Driver Format List Ptm Table Tatp
