examples/bank_transfer.mli:
