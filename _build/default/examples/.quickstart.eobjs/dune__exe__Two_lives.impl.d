examples/two_lives.ml: Array Bptree Config Core Filename List Printf Ptm Sim Sys
