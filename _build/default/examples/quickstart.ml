(* Quickstart: a persistent counter and map that survive a power
   failure.

     dune exec examples/quickstart.exe

   Walks through the whole stack: create a simulated Optane machine
   under the ADR durability domain, run transactions, pull the plug at
   a random instant, reboot, recover, and read the data back. *)

open Core

let () =
  (* 1. A simulated Optane DC machine (AppDirect + ADR) and a PTM
     runtime with redo logging ("orec-lazy"). *)
  let sim, _m, ptm = simulated_ptm ~model:Config.optane_adr ~algorithm:Ptm.Redo () in

  (* 2. Allocate a persistent counter and a persistent B+Tree; root
     them so recovery can find them. *)
  let counter =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 1 in
        Ptm.write tx a 0;
        a)
  in
  let tree = Bptree.create ptm in
  Ptm.root_set ptm 0 counter;
  Ptm.root_set ptm 1 (Bptree.descriptor tree);
  Sim.persist_all sim;

  (* 3. Two simulated threads do transactional work; power fails at
     200 microseconds of virtual time. *)
  for tid = 0 to 1 do
    ignore
      (Sim.spawn sim (fun () ->
           let rng = Rng.create (tid + 1) in
           for i = 0 to 10_000 do
             Ptm.atomic ptm (fun tx ->
                 Ptm.write tx counter (Ptm.read tx counter + 1);
                 ignore
                   (Bptree.insert tx tree ~key:(1 + Rng.int rng 500) ~value:((tid * 100_000) + i)))
           done))
  done;
  Sim.run ~crash_at:200_000 sim;
  Printf.printf "power failed at %d ns of virtual time (crashed=%b)\n" (Sim.now sim)
    (Sim.crashed sim);

  (* 4. Reboot: heap = whatever the durability domain saved.  Recovery
     replays committed redo logs and discards in-flight transactions. *)
  let sim' = Sim.reboot sim in
  let ptm' = Ptm.recover ~algorithm:Ptm.Redo (Sim.machine sim') in
  let counter' = Ptm.root_get ptm' 0 in
  let tree' = Bptree.attach ptm' (Ptm.root_get ptm' 1) in

  let count = Ptm.atomic ptm' (fun tx -> Ptm.read tx counter') in
  let entries = List.length (Bptree.to_alist tree') in
  Printf.printf "recovered: counter=%d, tree entries=%d\n" count entries;
  Bptree.check_invariants tree';
  Printf.printf "tree invariants hold after recovery\n";

  (* 5. The recovered heap is immediately usable. *)
  Ptm.atomic ptm' (fun tx ->
      ignore (Bptree.insert tx tree' ~key:999_983 ~value:42);
      Ptm.write tx counter' (Ptm.read tx counter' + 1));
  Printf.printf "post-recovery transaction committed\n"
