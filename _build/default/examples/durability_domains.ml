(* The paper's central comparison in miniature: one workload (TATP),
   every durability domain, side by side.

     dune exec examples/durability_domains.exe

   Prints throughput plus the machine-level counters that explain the
   differences (fence waits, WPQ stalls, NVM reads). *)

open Core

let () =
  let table =
    Table.create ~title:"TATP, 8 threads, redo logging, by durability domain"
      ~header:
        [ "model"; "M tx/s"; "clwbs"; "sfences"; "fence wait (us)"; "WPQ stall (us)"; "NVM reads" ]
  in
  List.iter
    (fun model ->
      let r =
        Driver.run ~duration_ns:2_000_000 ~model ~algorithm:Ptm.Redo ~threads:8 Tatp.spec
      in
      let s = r.Driver.sim in
      Table.add_row table
        [
          r.Driver.model;
          Table.cell_f (r.Driver.txs_per_sec /. 1e6);
          string_of_int s.Sim.Stats.clwbs;
          string_of_int s.Sim.Stats.sfences;
          Table.cell_f (float_of_int s.Sim.Stats.fence_wait_ns /. 1e3);
          Table.cell_f (float_of_int s.Sim.Stats.wpq_stall_ns /. 1e3);
          string_of_int s.Sim.Stats.nvm_reads;
        ])
    [
      Config.dram_adr;
      Config.dram_eadr;
      Config.optane_adr;
      Config.optane_adr_nofence;
      Config.optane_eadr;
      Config.pdram;
      Config.pdram_lite;
    ];
  Format.printf "%a" Table.print table;
  Format.printf
    "Reading guide: ADR pays for clwb+sfence (fence wait, WPQ stalls); eADR removes them@.";
  Format.printf
    "but still writes back to Optane on eviction; PDRAM hides Optane behind persistent DRAM.@."
