(* The paper's closing question (§V): "whether hardware transactional
   memory is a viable strategy for accelerating PTM ... [TSX] might
   work with eADR and PDRAM."

     dune exec examples/htm_acceleration.exe

   Runs TATP under the two flush-free durability domains with the
   software paths (redo / undo) and the TSX-style hardware mode, and
   prints the machine evidence: HTM issues no flushes at all, commits
   its write set as one indivisible publish, and falls back to the STM
   only on capacity or repeated conflict. *)

open Core

let () =
  let table =
    Table.create ~title:"TATP: HTM vs software PTM (M tx/s by thread count)"
      ~header:[ "model"; "algorithm"; "1"; "4"; "16"; "32" ]
  in
  List.iter
    (fun (model : Config.model) ->
      List.iter
        (fun algorithm ->
          let cells =
            List.map
              (fun threads ->
                let r =
                  Driver.run ~duration_ns:1_500_000 ~model ~algorithm ~threads Tatp.spec
                in
                Table.cell_f (r.Driver.txs_per_sec /. 1e6))
              [ 1; 4; 16; 32 ]
          in
          Table.add_row table
            (model.Config.model_name :: Ptm.algorithm_name algorithm :: cells))
        [ Ptm.Redo; Ptm.Undo; Ptm.Htm ])
    [ Config.optane_eadr; Config.pdram ];
  Format.printf "%a" Table.print table;
  (* And the reason ADR cannot play: clwb aborts a TSX transaction. *)
  let sim, m = simulated_machine ~model:Config.optane_adr () in
  ignore sim;
  (match Ptm.create ~algorithm:Ptm.Htm m with
  | _ -> Format.printf "unexpected: HTM accepted under ADR@."
  | exception Invalid_argument msg -> Format.printf "ADR rejected as expected: %s@." msg);
  Format.printf
    "HTM wins because commits publish the write set in one indivisible step —@.";
  Format.printf
    "no logging, no clwb, no sfence — and capacity/conflict cases fall back to redo.@."
