(* The simulated DIMMs are actually durable: Sim.save_image writes the
   surviving media image to a file, and a later machine — in this
   process or another — picks the data up with Sim.load_image.

     dune exec examples/two_lives.exe [image-file]

   First run: creates a store, adds records, crashes the machine, and
   saves whatever the ADR domain preserved.  Second run (same file):
   loads the image, recovers, audits, and extends the store. *)

open Core

let cfg = Config.make ~heap_words:(1 lsl 19) Config.optane_adr

let first_life path =
  let sim = Sim.create cfg in
  let ptm = Ptm.create (Sim.machine sim) in
  let tree = Bptree.create ptm in
  Ptm.root_set ptm 0 (Bptree.descriptor tree);
  Ptm.root_set ptm 1 0 (* generation counter *);
  Sim.persist_all sim;
  ignore
    (Sim.spawn sim (fun () ->
         for k = 1 to 100_000 do
           Ptm.atomic ptm (fun tx -> ignore (Bptree.insert tx tree ~key:k ~value:(k * 3)))
         done));
  Sim.run ~crash_at:300_000 sim;
  Printf.printf "life 1: power failed mid-insert (crashed=%b)\n" (Sim.crashed sim);
  Sim.save_image sim path;
  Printf.printf "life 1: media image saved to %s\n" path

let next_life path =
  let sim = Sim.load_image cfg path in
  let ptm = Ptm.recover (Sim.machine sim) in
  let tree = Bptree.attach ptm (Ptm.root_get ptm 0) in
  Bptree.check_invariants tree;
  let generation = Ptm.root_get ptm 1 + 1 in
  Ptm.root_set ptm 1 generation;
  let entries = List.length (Bptree.to_alist tree) in
  Printf.printf "life %d: recovered %d entries, tree invariants hold\n" (generation + 1) entries;
  Ptm.atomic ptm (fun tx -> ignore (Bptree.insert tx tree ~key:(1_000_000 + generation) ~value:0));
  Sim.persist_all sim;
  Sim.save_image sim path;
  Printf.printf "life %d: extended the store and saved again\n" (generation + 1)

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else Filename.concat (Filename.get_temp_dir_name ()) "optane_ptm_demo.img"
  in
  if Sys.file_exists path then next_life path
  else begin
    first_life path;
    (* Demonstrate the second life immediately. *)
    next_life path
  end
