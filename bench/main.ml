(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index) and runs Bechamel
   microbenchmarks of the core primitives.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig3 table1  # selected experiments
     dune exec bench/main.exe -- --quick all  # fast smoke sweep
     dune exec bench/main.exe -- --csv out/ fig8
     dune exec bench/main.exe -- --jobs 4 --json fig3
     dune exec bench/main.exe -- speedup      # serial-vs-parallel self-bench

   Output tables mirror the paper's rows/series; CSVs are written when
   --csv DIR is given.  --jobs N fans the independent simulation cells
   of each experiment across N domains (tables stay byte-identical to
   --jobs 1); --json additionally writes BENCH_<experiment>.json next
   to the CSVs (or in the cwd). *)

module Experiments = Workloads.Experiments
module Table = Repro_util.Table
module Pool = Parallel.Pool

let csv_dir = ref None
let quick = ref false
let jobs = ref None
let json = ref false

let effective_jobs () =
  match !jobs with Some j -> j | None -> Pool.default_jobs ()

let write_csv name (t : Table.t) =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    output_string oc (Table.to_csv t);
    close_out oc;
    Format.printf "  (csv written to %s)@." path

let write_json ?jobs:jobs_used ?quick:quick_used name ~wall_s ?extra results =
  if !json then begin
    let dir = Option.value !csv_dir ~default:"." in
    let jobs = Option.value jobs_used ~default:(effective_jobs ()) in
    let quick = Option.value quick_used ~default:!quick in
    let path =
      Workloads.Bench_json.write ~dir ~experiment:name ~quick ~jobs ~wall_s ?extra results
    in
    Format.printf "  (json written to %s)@." path
  end

let run_experiment name =
  match List.assoc_opt name Experiments.all with
  | None -> Format.eprintf "unknown experiment %S@." name
  | Some f ->
    let t0 = Unix.gettimeofday () in
    let outcome = f ~quick:!quick ?jobs:!jobs () in
    let wall_s = Unix.gettimeofday () -. t0 in
    List.iteri
      (fun i table ->
        Format.printf "%a" Table.print table;
        write_csv (Printf.sprintf "%s-%d" name i) table)
      outcome.Experiments.tables;
    write_json name ~wall_s outcome.Experiments.results;
    Format.printf "  [%s: %d data points, %.1fs]@." name
      (List.length outcome.Experiments.results)
      wall_s

(* ---------- speedup: serial vs parallel self-benchmark ---------- *)

(* Runs one quick-sized Fig 3 panel twice — once with a single worker,
   once with the requested pool — checks the rendered tables are
   byte-identical, and reports wall time and simulated-events/sec for
   both.  Always records the measurement in BENCH_speedup.json so the
   simulator's speed trajectory can be tracked across commits.  The
   parallel leg uses --jobs if given, else every available core (at
   least 2, so the domain machinery is exercised even on one core —
   where the honest expectation is no speedup). *)
let speedup () =
  let spec = Workloads.Btree_bench.insert_only in
  let par_jobs = match !jobs with Some j -> max j 2 | None -> max 2 (Pool.default_jobs ()) in
  (* Each leg also samples the GC before/after: with jobs = 1 the whole
     panel runs in the calling domain, so the minor/major word deltas
     divided by simulated events give the allocation cost of one DES
     event — the metric the zero-allocation hot-loop work is tracked
     by (wall clock on a shared machine is too noisy to regress on). *)
  let leg jobs =
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let outcome = Experiments.fig3_panel ~quick:true ~jobs spec in
    let wall = Unix.gettimeofday () -. t0 in
    let g1 = Gc.quick_stat () in
    let rendered =
      String.concat "\n"
        (List.map (Format.asprintf "%a" Table.print) outcome.Experiments.tables)
    in
    (outcome, wall, rendered, g1.Gc.minor_words -. g0.Gc.minor_words,
     g1.Gc.major_words -. g0.Gc.major_words)
  in
  let serial, serial_wall, serial_out, serial_minor, serial_major = leg 1 in
  let jobs2, jobs2_wall, jobs2_out, _, _ = leg 2 in
  (* The headline parallel leg reuses the jobs=2 measurement when the
     pool would be the same size — no point timing it twice. *)
  let parallel, par_wall, par_out =
    if par_jobs = 2 then (jobs2, jobs2_wall, jobs2_out)
    else
      let o, w, r, _, _ = leg par_jobs in
      (o, w, r)
  in
  let identical = String.equal serial_out par_out && String.equal serial_out jobs2_out in
  let events o =
    List.fold_left (fun acc r -> acc + Workloads.Bench_json.events r) 0 o.Experiments.results
  in
  let rate o wall = float_of_int (events o) /. wall in
  let sp = serial_wall /. par_wall in
  let sp2 = serial_wall /. jobs2_wall in
  let cells = List.length serial.Experiments.results in
  let pool_chunk = Pool.default_chunk ~n:cells ~jobs:par_jobs in
  let serial_events = events serial in
  let minor_per_event = serial_minor /. float_of_int (max 1 serial_events) in
  let major_per_event = serial_major /. float_of_int (max 1 serial_events) in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Speedup — quick Fig 3 panel (%s), %d cells, %d cores, chunk %d"
           spec.Workloads.Driver.name cells
           (Domain.recommended_domain_count ())
           pool_chunk)
      ~header:[ "mode"; "jobs"; "wall s"; "sim events/s"; "speedup" ]
  in
  Table.add_row t
    [ "serial"; "1"; Table.cell_f serial_wall; Table.cell_f (rate serial serial_wall); "1.00" ];
  Table.add_row t
    [ "parallel"; "2"; Table.cell_f jobs2_wall; Table.cell_f (rate jobs2 jobs2_wall);
      Table.cell_f sp2 ];
  if par_jobs <> 2 then
    Table.add_row t
      [
        "parallel";
        string_of_int par_jobs;
        Table.cell_f par_wall;
        Table.cell_f (rate parallel par_wall);
        Table.cell_f sp;
      ];
  Format.printf "%a" Table.print t;
  Format.printf "  parallel output byte-identical to serial: %b@." identical;
  (* One-line human summaries of the measurement, greppable from CI logs. *)
  Format.printf "  speedup: %.2fx with %d jobs on %d cores — %.2fM events/s parallel vs %.2fM serial@."
    sp par_jobs
    (Domain.recommended_domain_count ())
    (rate parallel par_wall /. 1e6)
    (rate serial serial_wall /. 1e6);
  Format.printf "  allocation: %.2f minor words/event, %.4f major words/event (serial leg)@."
    minor_per_event major_per_event;
  let saved_json = !json in
  json := true;
  write_json "speedup" ~jobs:par_jobs ~quick:true ~wall_s:par_wall
    ~extra:
      [
        ("serial_wall_s", Workloads.Bench_json.Float serial_wall);
        ("parallel_wall_s", Workloads.Bench_json.Float par_wall);
        ("parallel_jobs", Workloads.Bench_json.Int par_jobs);
        ("speedup", Workloads.Bench_json.Float sp);
        ("serial_events_per_sec", Workloads.Bench_json.Float (rate serial serial_wall));
        ("parallel_events_per_sec", Workloads.Bench_json.Float (rate parallel par_wall));
        ("jobs2_wall_s", Workloads.Bench_json.Float jobs2_wall);
        ("jobs2_events_per_sec", Workloads.Bench_json.Float (rate jobs2 jobs2_wall));
        ("speedup_jobs2", Workloads.Bench_json.Float sp2);
        ("pool_chunk", Workloads.Bench_json.Int pool_chunk);
        ("minor_words_per_event", Workloads.Bench_json.Float minor_per_event);
        ("major_words_per_event", Workloads.Bench_json.Float major_per_event);
        ("byte_identical", Workloads.Bench_json.Bool identical);
      ]
    parallel.Experiments.results;
  json := saved_json;
  if not identical then begin
    Format.eprintf "speedup: parallel output differs from serial!@.";
    exit 1
  end

(* ---------- kvserve: sharded KV service sweep + recovery ---------- *)

(* Working-set sweep through the full service path (codec → router →
   batch → commit) and the per-domain restart-recovery table, from
   lib/kvserve.  No Driver.results — the per-run metrics land in the
   JSON extras instead. *)
let kvserve_experiment () =
  let t0 = Unix.gettimeofday () in
  let outcome = Kvserve.Bench.run ~quick:!quick ?jobs:!jobs () in
  let wall_s = Unix.gettimeofday () -. t0 in
  List.iteri
    (fun i table ->
      Format.printf "%a" Table.print table;
      write_csv (Printf.sprintf "kvserve-%d" i) table)
    outcome.Kvserve.Bench.tables;
  write_json "kvserve" ~wall_s ~extra:outcome.Kvserve.Bench.extra [];
  Format.printf "  [kvserve: %.1fs]@." wall_s

(* ---------- trace: request tracing + tail-latency attribution ---------- *)

(* Every durability domain served with request tracing on: end-to-end
   latency percentiles measured from the request spans and a blame
   table attributing exclusive time per span kind over the p95..p100
   band.  With --json, the full blame vectors and the span digest land
   in BENCH_trace.json — the regression sentinel's input. *)
let trace_experiment () =
  let t0 = Unix.gettimeofday () in
  let outcome = Kvserve.Bench.run_trace ~quick:!quick ?jobs:!jobs () in
  let wall_s = Unix.gettimeofday () -. t0 in
  List.iteri
    (fun i table ->
      Format.printf "%a" Table.print table;
      write_csv (Printf.sprintf "trace-%d" i) table)
    outcome.Kvserve.Bench.tables;
  write_json "trace" ~wall_s ~extra:outcome.Kvserve.Bench.extra [];
  Format.printf "  [trace: %.1fs]@." wall_s

(* ---------- Telemetry: instrumented bank runs with phase profiles ---------- *)

(* Short instrumented runs under ADR and eADR for both log algorithms.
   Shows where virtual time goes per phase (the paper's fence-cost
   story: undo pays a flush+fence per write, redo defers to commit)
   and, with --csv DIR, dumps full profile/series/trace files per
   configuration under DIR/telemetry/<model>-<alg>/. *)
let telemetry_experiment () =
  let duration_ns = if !quick then 200_000 else 1_000_000 in
  let configs =
    [
      (Memsim.Config.optane_adr, Pstm.Ptm.Redo);
      (Memsim.Config.optane_adr, Pstm.Ptm.Undo);
      (Memsim.Config.optane_eadr, Pstm.Ptm.Redo);
      (Memsim.Config.optane_eadr, Pstm.Ptm.Undo);
    ]
  in
  List.iter
    (fun (model, algorithm) ->
      let r =
        Workloads.Driver.run ~duration_ns ~telemetry:Telemetry.default_config ~model ~algorithm
          ~threads:4 Workloads.Bank.spec
      in
      let cap =
        match r.Workloads.Driver.telemetry with
        | Some cap -> cap
        | None -> failwith "telemetry capture missing"
      in
      let p = Telemetry.profile cap in
      let tids = Pstm.Profile.tids p in
      let sum f = List.fold_left (fun acc tid -> acc + f ~tid) 0 tids in
      let total_txn_ns = sum (Pstm.Profile.txn_ns p) in
      let table =
        Table.create
          ~title:
            (Printf.sprintf "phase profile: bank on %s (%s, %d commits)"
               model.Memsim.Config.model_name
               (Pstm.Ptm.algorithm_name algorithm)
               r.Workloads.Driver.commits)
          ~header:[ "phase"; "count"; "total ns"; "share %"; "fences"; "flushes" ]
      in
      List.iter
        (fun phase ->
          let count = sum (fun ~tid -> Pstm.Profile.phase_count p ~tid phase) in
          if count > 0 then
            let ns = sum (fun ~tid -> Pstm.Profile.phase_ns p ~tid phase) in
            Table.add_row table
              [
                Pstm.Profile.phase_name phase;
                string_of_int count;
                string_of_int ns;
                Table.cell_f (100.0 *. float_of_int ns /. float_of_int (max 1 total_txn_ns));
                string_of_int (sum (fun ~tid -> Pstm.Profile.phase_fences p ~tid phase));
                string_of_int (sum (fun ~tid -> Pstm.Profile.phase_flushes p ~tid phase));
              ])
        Pstm.Profile.all_phases;
      Format.printf "%a" Table.print table;
      let fences_saved = sum (Pstm.Profile.fences_saved p) in
      let flushes_saved = sum (Pstm.Profile.flushes_saved p) in
      if fences_saved > 0 || flushes_saved > 0 then
        Format.printf "  (coalescing saved %d fences, %d clwbs vs the naive per-entry path)@."
          fences_saved flushes_saved;
      (match !csv_dir with
      | None -> ()
      | Some dir ->
        let sub =
          Filename.concat
            (Filename.concat dir "telemetry")
            (Printf.sprintf "%s-%s" model.Memsim.Config.model_name
               (Pstm.Ptm.algorithm_name algorithm))
        in
        let meta =
          Workloads.Driver.run_meta r ~seed:Workloads.Driver.default_seed ~duration_ns
        in
        List.iter (Format.printf "  (telemetry written to %s)@.") (Telemetry.dump ~dir:sub meta cap)))
    configs

(* ---------- Bechamel microbenchmarks of the primitives ---------- *)

let microbench () =
  let open Bechamel in
  let open Toolkit in
  (* A standing simulated machine; primitives run outside simulated
     threads (untimed virtually — what we measure here is the real
     cost of the simulator itself). *)
  let sim, m =
    let cfg =
      Memsim.Config.make ~heap_words:(1 lsl 18) ~track_media:false Memsim.Config.optane_adr
    in
    let s = Memsim.Sim.create cfg in
    (s, Memsim.Sim.machine s)
  in
  ignore sim;
  let ptm = Pstm.Ptm.create ~max_threads:4 m in
  let counter =
    Pstm.Ptm.atomic ptm (fun tx ->
        let a = Pstm.Ptm.alloc tx 1 in
        Pstm.Ptm.write tx a 0;
        a)
  in
  let rng = Repro_util.Rng.create 1 in
  let zipf = Repro_util.Zipf.create 4096 in
  let tests =
    [
      Test.make ~name:"sim-load" (Staged.stage (fun () -> m.Machine.load 4096));
      Test.make ~name:"sim-store" (Staged.stage (fun () -> m.Machine.store 4096 1));
      Test.make ~name:"sim-clwb" (Staged.stage (fun () -> m.Machine.clwb 4096));
      Test.make ~name:"orec-cas" (Staged.stage (fun () -> m.Machine.meta_cas 70_000 0 0));
      Test.make ~name:"ptm-tx-1-write"
        (Staged.stage (fun () ->
             Pstm.Ptm.atomic ptm (fun tx ->
                 Pstm.Ptm.write tx counter (Pstm.Ptm.read tx counter + 1))));
      Test.make ~name:"rng-next" (Staged.stage (fun () -> Repro_util.Rng.next rng));
      Test.make ~name:"zipf-sample" (Staged.stage (fun () -> Repro_util.Zipf.sample zipf rng));
    ]
  in
  let grouped = Test.make_grouped ~name:"prim" ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"Microbenchmarks (real ns per call, Bechamel OLS)"
      ~header:[ "primitive"; "ns/call" ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let cell =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Table.cell_f est
        | Some _ | None -> "-"
      in
      Table.add_row table [ name; cell ])
    (List.sort compare rows);
  Format.printf "%a" Table.print table;
  write_csv "microbench" table

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
      quick := true;
      parse acc rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      parse acc rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 1 -> jobs := Some j
      | Some _ | None ->
        Format.eprintf "--jobs expects a positive integer, got %S@." n;
        exit 2);
      parse acc rest
    | "--json" :: rest ->
      json := true;
      parse acc rest
    | arg :: rest -> parse (arg :: acc) rest
  in
  let selected = parse [] args in
  let selected =
    if selected = [] || selected = [ "all" ] then
      List.map fst Experiments.all @ [ "kvserve"; "trace"; "telemetry"; "microbench" ]
    else selected
  in
  List.iter
    (fun name ->
      match name with
      | "microbench" -> microbench ()
      | "kvserve" -> kvserve_experiment ()
      | "trace" -> trace_experiment ()
      | "telemetry" -> telemetry_experiment ()
      | "speedup" -> speedup ()
      | _ -> run_experiment name)
    selected
